// Frame-aware delegate balancing (lb/delegate_balancer.hpp + the mutable
// delegate role on mp::NodeMap): the measured frame cost, the pure and
// collective delegate choices, and the end-to-end payoff — moving the frame
// endpoint off a loaded rank lowers the virtual makespan without changing a
// byte, and folding frame cost into the per-item load hands delegates
// lighter intervals.
#include <gtest/gtest.h>

#include <vector>

#include "exec/gather_scatter.hpp"
#include "lb/controller.hpp"
#include "lb/delegate_balancer.hpp"
#include "mp/cluster.hpp"
#include "sched/coalesce.hpp"
#include "sched/synthetic.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using mp::NodeMap;
using partition::IntervalPartition;

TEST(NodeMapDelegates, DefaultIsLowestRankAndReassignable) {
  NodeMap nm = NodeMap::contiguous(6, 3);
  EXPECT_EQ(nm.delegate_of(0), 0);
  EXPECT_EQ(nm.delegate_of(1), 3);
  nm.set_delegate(0, 2);
  EXPECT_EQ(nm.delegate_of(0), 2);
  EXPECT_EQ(nm.delegate_of_rank(1), 2);
  EXPECT_EQ(nm.delegate_of(1), 3);  // untouched
  nm.set_delegates(std::vector<mp::Rank>{1, 5});
  EXPECT_EQ(nm.delegate_of(0), 1);
  EXPECT_EQ(nm.delegate_of(1), 5);
  EXPECT_EQ(nm.delegates(), (std::vector<mp::Rank>{1, 5}));
}

TEST(DelegateBalancer, FrameSecondsPricesSetupAndSerializedBytes) {
  const auto net = sim::NetworkModel::ethernet_10mbps();
  mp::CommStats stats;
  EXPECT_DOUBLE_EQ(lb::frame_seconds(stats, net), 0.0);
  stats.frames_sent = 4;
  stats.frame_bytes_sent = 10000;
  const double expected =
      4.0 * net.send_overhead + net.contention * 10000.0 * net.send_per_byte;
  EXPECT_DOUBLE_EQ(lb::frame_seconds(stats, net), expected);
}

TEST(DelegateBalancer, FrameAwareTimePerItemInflatesOnlyDelegates) {
  const auto net = sim::NetworkModel::ethernet_10mbps();
  mp::CommStats idle;
  EXPECT_DOUBLE_EQ(lb::frame_aware_time_per_item(2e-4, idle, net, 1000), 2e-4);
  mp::CommStats busy;
  busy.frames_sent = 10;
  busy.frame_bytes_sent = 80000;
  const double inflated = lb::frame_aware_time_per_item(2e-4, busy, net, 1000);
  EXPECT_DOUBLE_EQ(inflated, 2e-4 + lb::frame_seconds(busy, net) / 1000.0);
  EXPECT_GT(inflated, 2e-4);
  // No items in the window: nothing to normalize by, unchanged.
  EXPECT_DOUBLE_EQ(lb::frame_aware_time_per_item(2e-4, busy, net, 0), 2e-4);
}

TEST(DelegateBalancer, FrameWindowPricesIntervalsIndependently) {
  // The stale-stats bug: cumulative frame counters grow across controller
  // intervals, so pricing them biases frame_seconds toward historical load.
  // take_frame_window must hand each interval its own traffic — two
  // identical intervals price identically.
  const auto net = sim::NetworkModel::ethernet_10mbps();
  mp::CommStats stats;
  auto one_interval = [&] {
    stats.record_frame(1, 4000, 0.004);
    stats.record_frame(1, 4000, 0.004);
    stats.record_frame(2, 1000, 0.001);
  };
  one_interval();
  const auto w1 = stats.take_frame_window();
  one_interval();
  const auto w2 = stats.take_frame_window();

  EXPECT_EQ(w1.frames_sent, 3u);
  EXPECT_EQ(w2.frames_sent, 3u);
  EXPECT_EQ(w1.frame_bytes_sent, w2.frame_bytes_sent);
  EXPECT_DOUBLE_EQ(lb::frame_seconds(w1, net), lb::frame_seconds(w2, net));
  ASSERT_EQ(w2.pair_frames.size(), 2u);
  EXPECT_EQ(w2.pair_frames[0].dest_node, 1);
  EXPECT_EQ(w2.pair_frames[0].frames, 2u);
  EXPECT_DOUBLE_EQ(w2.pair_frames[0].seconds, 0.008);
  // The cumulative totals keep the full history (and price double).
  EXPECT_EQ(stats.frames_sent, 6u);
  EXPECT_DOUBLE_EQ(lb::frame_seconds(stats, net), 2.0 * lb::frame_seconds(w1, net));
  // An idle interval prices to zero.
  const auto w3 = stats.take_frame_window();
  EXPECT_EQ(w3.frames_sent, 0u);
  EXPECT_TRUE(w3.pair_frames.empty());
  EXPECT_DOUBLE_EQ(lb::frame_seconds(w3, net), 0.0);
}

TEST(DelegateBalancer, ChooseDelegatesKeepsIncumbentOnIdleNodes) {
  // A node that measured no load has nothing to decide: a deliberate
  // earlier rotation must survive a quiet interval instead of resetting to
  // the lowest rank.
  NodeMap nm = NodeMap::contiguous(6, 3);
  nm.set_delegate(1, 4);  // deliberate non-default assignment
  const std::vector<double> idle_node1{0.9, 0.2, 0.5, 0.0, 0.0, 0.0};
  const auto kept = lb::choose_delegates(nm, idle_node1, nm.delegates());
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1);  // loaded node: lightest rank wins
  EXPECT_EQ(kept[1], 4);  // idle node: incumbent kept
  // Once the node measures load again, the choice is live again.
  const std::vector<double> busy{0.9, 0.2, 0.5, 0.1, 0.3, 0.2};
  EXPECT_EQ(lb::choose_delegates(nm, busy, nm.delegates())[1], 3);
}

TEST(DelegateBalancer, RotateDelegatesSkipsAndChargesIdleNodesOnce) {
  // Skip-and-charge-once: a node whose delegate shipped nothing keeps its
  // delegate and pays one list op for the idleness check, not a per-rank
  // decision scan. Comparing two otherwise identical rotations, the one
  // with an idle node must finish strictly earlier (the collectives move
  // the same bytes either way).
  const std::size_t nprocs = 8;
  auto run_rotation = [&](const std::vector<double>& load) {
    mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(nprocs),
                        NodeMap::contiguous(8, 4));
    std::vector<mp::Rank> chosen;
    cluster.run([&](mp::Process& p) {
      const auto mine = lb::rotate_delegates(
          p, load[static_cast<std::size_t>(p.rank())], sim::CpuCostModel::sun4());
      if (p.is_root()) chosen = mine;
    });
    return std::make_pair(cluster.makespan(), chosen);
  };

  const std::vector<double> node1_idle{0.4, 0.1, 0.2, 0.3, 0.0, 0.0, 0.0, 0.0};
  const std::vector<double> both_busy{0.4, 0.1, 0.2, 0.3, 0.4, 0.1, 0.2, 0.3};
  const auto [idle_makespan, idle_chosen] = run_rotation(node1_idle);
  const auto [busy_makespan, busy_chosen] = run_rotation(both_busy);
  EXPECT_EQ(idle_chosen, (std::vector<mp::Rank>{1, 4}));  // node 1 keeps rank 4
  EXPECT_EQ(busy_chosen, (std::vector<mp::Rank>{1, 5}));
  EXPECT_LT(idle_makespan, busy_makespan);
  // The difference is exactly the skipped scan: 4 ranks' ops replaced by
  // one idleness check on every rank's clock.
  EXPECT_NEAR(busy_makespan - idle_makespan,
              3.0 * sim::CpuCostModel::sun4().per_list_op, 1e-12);
}

TEST(DelegateBalancer, ChooseDelegatesPicksLightestRankPerNode) {
  const NodeMap nm = NodeMap::contiguous(6, 3);
  const std::vector<double> load{0.9, 0.2, 0.5, 0.0, 0.0, 0.7};
  const auto chosen = lb::choose_delegates(nm, load);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 1);  // lightest on node 0
  EXPECT_EQ(chosen[1], 3);  // tie between ranks 3 and 4 breaks to the lowest
}

TEST(DelegateBalancer, UniformLoadReproducesDefaultAssignment) {
  const NodeMap nm = NodeMap::contiguous(8, 4);
  const std::vector<double> load(8, 1.0);
  const auto chosen = lb::choose_delegates(nm, load);
  EXPECT_EQ(chosen, nm.delegates());
}

TEST(DelegateBalancer, RotateDelegatesIsCollectiveDeterministicAndCharged) {
  const std::size_t nprocs = 6;
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(nprocs),
                      NodeMap::contiguous(6, 2));
  const std::vector<double> load{0.5, 0.1, 0.0, 0.3, 0.2, 0.15};
  std::vector<std::vector<mp::Rank>> chosen(nprocs);
  cluster.run([&](mp::Process& p) {
    chosen[static_cast<std::size_t>(p.rank())] = lb::rotate_delegates(
        p, load[static_cast<std::size_t>(p.rank())], sim::CpuCostModel::sun4());
  });
  for (std::size_t r = 1; r < nprocs; ++r) EXPECT_EQ(chosen[r], chosen[0]);
  EXPECT_EQ(chosen[0], (std::vector<mp::Rank>{1, 2, 5}));
  // The allgather round and the decision work landed on the clocks.
  EXPECT_GT(cluster.makespan(), 0.0);
}

/// One coalesced gather+scatter round per rank over `plans`, returning
/// (ghost, local) for bitwise comparison across delegate assignments.
std::pair<std::vector<std::vector<double>>, std::vector<std::vector<double>>>
run_coalesced(mp::Cluster& cluster, const std::vector<sched::CommSchedule>& schedules,
              const std::vector<sched::CoalescePlan>& plans, int rounds) {
  const std::size_t nprocs = schedules.size();
  std::vector<std::vector<double>> ghost(nprocs), local(nprocs);
  std::vector<exec::ExecWorkspace> ws(nprocs);
  for (std::size_t r = 0; r < nprocs; ++r) {
    local[r] = test::seeded_values(static_cast<std::size_t>(schedules[r].nlocal), 40 + r);
    ghost[r].assign(static_cast<std::size_t>(schedules[r].nghost), 0.0);
  }
  cluster.reset_clocks();
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    for (int it = 0; it < rounds; ++it) {
      exec::gather_coalesced<double>(p, schedules[r], plans[r], local[r],
                                     std::span<double>(ghost[r]), ws[r]);
      exec::scatter_add_coalesced<double>(p, schedules[r], plans[r], ghost[r],
                                          std::span<double>(local[r]), ws[r]);
    }
  });
  return {ghost, local};
}

TEST(DelegateBalancer, RotationOffSlowRankLowersMakespanByteIdentically) {
  // Two physical nodes of 4 ranks; the lowest rank of each node — the
  // default delegate — sits on a quarter-speed CPU, so the node's whole
  // frame serialization runs at quarter speed. Frame-aware rotation moves
  // the endpoint to an unloaded full-speed co-resident.
  const int nprocs = 8;
  auto spec = sim::MachineSpec::uniform_ethernet(nprocs);
  spec.nodes[0].speed = 0.25;
  spec.nodes[4].speed = 0.25;
  mp::Cluster cluster(std::move(spec), NodeMap::contiguous(nprocs, 4));

  std::vector<sched::CommSchedule> schedules;
  schedules.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    schedules.push_back(sched::all_pairs_schedule(nprocs, r, 64));
  }
  auto build_plans = [&] {
    std::vector<sched::CoalescePlan> plans(nprocs);
    cluster.run([&](mp::Process& p) {
      plans[static_cast<std::size_t>(p.rank())] =
          sched::coalesce(p, schedules[static_cast<std::size_t>(p.rank())],
                          sim::CpuCostModel::free());
    });
    return plans;
  };

  const auto slow_plans = build_plans();
  const auto before = run_coalesced(cluster, schedules, slow_plans, 4);
  const double slow_makespan = cluster.makespan();

  // Measure the frame cost each rank actually paid (normalized by its
  // delivered speed — the slow delegate reports 4x the virtual seconds) and
  // rotate collectively.
  std::vector<mp::Rank> new_delegates;
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const double my_load =
        lb::frame_seconds(cluster.last_stats()[r], p.net()) / p.clock().speed();
    // Identical on every rank; a single writer keeps the capture race-free.
    const auto chosen = lb::rotate_delegates(p, my_load, sim::CpuCostModel::sun4());
    if (p.is_root()) new_delegates = chosen;
  });
  EXPECT_EQ(new_delegates, (std::vector<mp::Rank>{1, 5}));

  cluster.set_delegates(new_delegates);
  const auto fast_plans = build_plans();
  const auto after = run_coalesced(cluster, schedules, fast_plans, 4);
  const double fast_makespan = cluster.makespan();

  EXPECT_LT(fast_makespan, 0.75 * slow_makespan)
      << "slow=" << slow_makespan << " rotated=" << fast_makespan;
  for (int r = 0; r < nprocs; ++r) {
    test::expect_vectors_eq(after.first[static_cast<std::size_t>(r)],
                            before.first[static_cast<std::size_t>(r)]);
    test::expect_vectors_eq(after.second[static_cast<std::size_t>(r)],
                            before.second[static_cast<std::size_t>(r)]);
  }
}

TEST(DelegateBalancer, FrameAwareLoadLeavesDelegatesLighterIntervals) {
  // The "lighter intervals" remedy: folding the delegate's frame cost into
  // its time-per-item makes lb::decide hand it a smaller interval, so the
  // funneling overlaps its co-residents' compute.
  const auto net = sim::NetworkModel::ethernet_10mbps();
  const auto part =
      IntervalPartition::from_weights(4000, std::vector<double>(4, 1.0));
  mp::CommStats delegate_stats;
  delegate_stats.frames_sent = 40;
  delegate_stats.frame_bytes_sent = 400000;

  std::vector<double> tpi(4, 1e-4);
  tpi[0] = lb::frame_aware_time_per_item(tpi[0], delegate_stats, net,
                                         part.size(0));
  ASSERT_GT(tpi[0], 1e-4);

  lb::LbOptions opts;
  opts.use_mcr = false;  // keep the arrangement: sizes isolate the effect
  opts.profitability_factor = 0.0;
  const auto d = lb::decide(part, tpi, opts);
  ASSERT_TRUE(d.remap);
  EXPECT_LT(d.new_partition.size(0), part.size(0));
  EXPECT_LT(d.new_partition.size(0), d.new_partition.size(1));
}

}  // namespace
}  // namespace stance
