// Unit tests for graph::Csr.
#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace stance::graph {
namespace {

Csr triangle() {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  return Csr::from_edges(3, edges);
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Csr, IsolatedVertices) {
  const Csr g = Csr::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_FALSE(g.is_connected());
}

TEST(Csr, TriangleStructure) {
  const Csr g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 2.0);
}

TEST(Csr, NeighborsAreSorted) {
  const std::vector<Edge> edges{{2, 0}, {2, 3}, {2, 1}};
  const Csr g = Csr::from_edges(4, edges);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 1);
  EXPECT_EQ(nb[2], 3);
}

TEST(Csr, SelfLoopsDropped) {
  const std::vector<Edge> edges{{0, 0}, {0, 1}};
  const Csr g = Csr::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Csr, DuplicateEdgesCollapsed) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}};
  const Csr g = Csr::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Csr, OutOfRangeEdgeRejected) {
  const std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW(Csr::from_edges(3, edges), std::invalid_argument);
}

TEST(Csr, EdgeListRoundTrips) {
  const Csr g = triangle();
  const auto edges = g.edge_list();
  const Csr g2 = Csr::from_edges(g.num_vertices(), edges);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.offsets(), g.offsets());
  EXPECT_EQ(g2.targets(), g.targets());
}

TEST(Csr, CoordsAttachAndValidate) {
  Csr g = triangle();
  EXPECT_FALSE(g.has_coords());
  g.set_coords({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_TRUE(g.has_coords());
  EXPECT_DOUBLE_EQ(g.coord(1).x, 1.0);
  EXPECT_THROW(g.set_coords({{0, 0}}), std::invalid_argument);
}

TEST(Csr, PermutedRelabelsEdgesAndCoords) {
  Csr g = triangle();
  g.set_coords({{0, 0}, {1, 0}, {0, 1}});
  // perm: old 0 -> 2, old 1 -> 0, old 2 -> 1.
  const std::vector<Vertex> perm{2, 0, 1};
  const Csr pg = g.permuted(perm);
  EXPECT_EQ(pg.num_edges(), 3);
  EXPECT_TRUE(pg.is_symmetric());
  // Old vertex 0 (coord 0,0) is now vertex 2.
  EXPECT_DOUBLE_EQ(pg.coord(2).x, 0.0);
  EXPECT_DOUBLE_EQ(pg.coord(0).x, 1.0);  // old vertex 1
}

TEST(Csr, PermutedByIdentityIsIdentical) {
  const Csr g = triangle();
  const std::vector<Vertex> id{0, 1, 2};
  const Csr pg = g.permuted(id);
  EXPECT_EQ(pg.offsets(), g.offsets());
  EXPECT_EQ(pg.targets(), g.targets());
}

TEST(Csr, PermutedPreservesDegreeMultiset) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Csr g = Csr::from_edges(4, edges);
  const std::vector<Vertex> perm{3, 1, 0, 2};
  const Csr pg = g.permuted(perm);
  std::vector<Vertex> da, db;
  for (Vertex v = 0; v < 4; ++v) {
    da.push_back(g.degree(v));
    db.push_back(pg.degree(perm[static_cast<std::size_t>(v)]));
  }
  EXPECT_EQ(da, db);
}

TEST(Csr, PathGraphConnectivity) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(Csr::from_edges(4, edges).is_connected());
  const std::vector<Edge> split{{0, 1}, {2, 3}};
  EXPECT_FALSE(Csr::from_edges(4, split).is_connected());
}

TEST(Csr, PermutationSizeValidated) {
  const Csr g = triangle();
  const std::vector<Vertex> bad{0, 1};
  EXPECT_THROW(g.permuted(bad), std::invalid_argument);
}

}  // namespace
}  // namespace stance::graph
