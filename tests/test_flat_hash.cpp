// Property tests for the shared open-addressing FlatHash: behaviour must
// match std::unordered_map over randomized workloads (100 seeds), through
// growth, and under adversarial probe clustering (degenerate hash policies
// that funnel every key into one chain).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/flat_hash.hpp"
#include "support/rng.hpp"

namespace stance::support {
namespace {

using Key = std::int32_t;

TEST(FlatHash, MatchesUnorderedMapOver100Seeds) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    FlatHash<Key, Key> flat;
    std::unordered_map<Key, Key> ref;
    // Mixed key ranges: dense, sparse, and stride-heavy (the stride
    // multiplies away low-bit entropy, which a weak hash would alias).
    const auto range = static_cast<std::uint64_t>(1) << (4 + seed % 16);
    const auto stride = static_cast<Key>(1 + (seed % 7) * (seed % 7));
    const int ops = 2000;
    for (int i = 0; i < ops; ++i) {
      const Key key = static_cast<Key>(rng.below(range)) * stride;
      if (rng.below(4) == 0) {
        // Lookup of a (maybe absent) key.
        const Key* got = flat.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, nullptr) << "seed " << seed;
        } else {
          ASSERT_NE(got, nullptr) << "seed " << seed;
          EXPECT_EQ(*got, it->second) << "seed " << seed;
        }
      } else {
        const Key value = static_cast<Key>(i);
        const auto [got, inserted] = flat.try_emplace(key, value);
        const auto [it, ref_inserted] = ref.try_emplace(key, value);
        EXPECT_EQ(inserted, ref_inserted) << "seed " << seed;
        EXPECT_EQ(got, it->second) << "seed " << seed;
      }
    }
    EXPECT_EQ(flat.size(), ref.size()) << "seed " << seed;
    for (const auto& [key, value] : ref) {
      const Key* got = flat.find(key);
      ASSERT_NE(got, nullptr) << "seed " << seed << " key " << key;
      EXPECT_EQ(*got, value) << "seed " << seed;
    }
  }
}

TEST(FlatHash, GrowthPreservesEveryEntry) {
  FlatHash<Key, Key> flat;  // no reserve: force the full rehash cascade
  const Key n = 100000;
  for (Key k = 0; k < n; ++k) flat.try_emplace(k * 3, k);
  EXPECT_EQ(flat.size(), static_cast<std::size_t>(n));
  // Power-of-two capacity with headroom (tombstone-free load factor).
  EXPECT_EQ(flat.capacity() & (flat.capacity() - 1), 0u);
  EXPECT_GT(flat.capacity(), flat.size());
  for (Key k = 0; k < n; ++k) {
    const Key* got = flat.find(k * 3);
    ASSERT_NE(got, nullptr) << k;
    EXPECT_EQ(*got, k);
  }
  EXPECT_EQ(flat.find(1), nullptr);  // between strides
}

/// Degenerate policy: every key hashes identically — the entire table is
/// one probe cluster, the linear-probing worst case.
struct ConstantHash {
  [[nodiscard]] std::uint64_t operator()(std::uint64_t) const noexcept { return 0; }
};

TEST(FlatHash, SurvivesWorstCaseProbeCluster) {
  FlatHash<Key, Key, ConstantHash> flat;
  const Key n = 3000;
  for (Key k = 0; k < n; ++k) {
    const auto [value, inserted] = flat.try_emplace(k, k + 1);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(value, k + 1);
  }
  EXPECT_EQ(flat.size(), static_cast<std::size_t>(n));
  // One contiguous chain: the longest probe walks the whole cluster.
  EXPECT_EQ(flat.max_probe_length(), static_cast<std::size_t>(n));
  for (Key k = 0; k < n; ++k) {
    const Key* got = flat.find(k);
    ASSERT_NE(got, nullptr) << k;
    EXPECT_EQ(*got, k + 1);
  }
  EXPECT_EQ(flat.find(n), nullptr);
  EXPECT_EQ(flat.find(-1), nullptr);
}

/// Near-degenerate policy: keys collapse into a handful of dense clusters
/// that must slide past each other across rehashes.
struct BucketedHash {
  [[nodiscard]] std::uint64_t operator()(std::uint64_t key) const noexcept {
    return (key % 5) << 61;  // five homes spread across the table
  }
};

TEST(FlatHash, ClusteredHomesStayConsistentWithReference) {
  FlatHash<Key, Key, BucketedHash> flat;
  std::unordered_map<Key, Key> ref;
  Rng rng(424242);
  for (int i = 0; i < 20000; ++i) {
    const Key key = static_cast<Key>(rng.below(1 << 14));
    flat.try_emplace(key, key * 2);
    ref.try_emplace(key, key * 2);
  }
  EXPECT_EQ(flat.size(), ref.size());
  for (const auto& [key, value] : ref) {
    const Key* got = flat.find(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(*got, value);
  }
}

TEST(FlatHash, ReserveAndClearReuseCapacity) {
  FlatHash<Key, Key> flat(1000);
  const std::size_t cap = flat.capacity();
  EXPECT_GE(cap * 7 / 8, 1000u);
  for (Key k = 0; k < 1000; ++k) flat.try_emplace(k, k);
  EXPECT_EQ(flat.capacity(), cap);  // reserve prevented rehash
  flat.clear();
  EXPECT_EQ(flat.size(), 0u);
  EXPECT_EQ(flat.capacity(), cap);  // storage retained
  EXPECT_EQ(flat.find(5), nullptr);
  flat.try_emplace(5, 7);
  ASSERT_NE(flat.find(5), nullptr);
  EXPECT_EQ(*flat.find(5), 7);
}

}  // namespace
}  // namespace stance::support
