// Stress suite for the lock-free delivery path introduced by ISSUE 9:
// support::MpscRing unit semantics, multi-producer floods through the ring
// and through mp::Mailbox, shutdown/poison while takers are blocked mid-
// flood, and fault-injector interleavings at cluster level. The whole file
// re-runs on the shm and tcp backends via the _shm/_tcp ctest variants, and
// the CI tsan leg runs it under ThreadSanitizer — these tests are the data-
// race oracle for the ring and the Dekker-style sleep/wake handshake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "mp/cluster.hpp"
#include "mp/errors.hpp"
#include "mp/fault.hpp"
#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "support/mpsc_ring.hpp"

namespace stance {
namespace {

using mp::FaultPlan;
using mp::FrameFault;
using mp::FrameRule;
using mp::KillRule;
using support::MpscRing;

// --- MpscRing unit semantics ------------------------------------------------

TEST(MpscRing, PushPopIsFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, FullRingRejectsWithoutConsuming) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  // One pop frees exactly one slot; FIFO order is undisturbed.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpscRing, WrapsAroundManyTimes) {
  MpscRing<std::size_t> ring(8);
  std::size_t out = 0;
  for (std::size_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.try_push(std::size_t{i}));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpscRing, DestructorDrainsLiveElements) {
  // Leak-checked by the asan CI leg: elements still in flight at destruction
  // must be destroyed, not abandoned.
  MpscRing<std::vector<int>> ring(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.try_push(std::vector<int>(100, i)));
  }
}

TEST(MpscRing, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(MpscRing<int>(0), std::invalid_argument);
  EXPECT_THROW(MpscRing<int>(3), std::invalid_argument);
  EXPECT_THROW(MpscRing<int>(100), std::invalid_argument);
}

TEST(MpscRingStress, MultiProducerFloodKeepsPerProducerFifo) {
  // 4 producers race CAS claims on a deliberately small ring while a
  // consumer drains concurrently; every element must arrive exactly once
  // and in per-producer order. Producers spin when the ring is full — the
  // Mailbox never does this (it overflows instead), so the spin here keeps
  // the test entirely on the lock-free path.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRing<std::pair<int, int>> ring(64);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int id = 0; id < kProducers; ++id) {
    producers.emplace_back([&, id] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int seq = 0; seq < kPerProducer; ++seq) {
        while (!ring.try_push(std::pair<int, int>{id, seq})) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  go.store(true, std::memory_order_release);
  while (received < kProducers * kPerProducer) {
    std::pair<int, int> item;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(item.second, next_seq[static_cast<std::size_t>(item.first)])
        << "producer " << item.first << " reordered";
    ++next_seq[static_cast<std::size_t>(item.first)];
    ++received;
  }
  for (auto& t : producers) t.join();
  std::pair<int, int> leftover;
  EXPECT_FALSE(ring.try_pop(leftover));
}

// --- Mailbox under concurrent flood -----------------------------------------

mp::RawMessage make_msg(mp::Rank src, mp::Tag tag, int value) {
  return mp::RawMessage{src, tag,
                        mp::to_bytes(std::span<const int>(&value, 1)), 0.0};
}

TEST(MailboxStress, ConcurrentProducersConsumerSeesEveryMessageInOrder) {
  // Each producer is a distinct source rank flooding one mailbox while the
  // consumer takes concurrently. 2000 messages x 4 sources overflows the
  // 512-slot ring many times over, so this exercises ring + overflow + the
  // ticket that keeps cross-path matching oldest-first.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  constexpr mp::Tag kTag = 11;
  mp::Mailbox box;
  std::vector<std::thread> producers;
  for (int src = 0; src < kProducers; ++src) {
    producers.emplace_back([&, src] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.deposit(make_msg(src, kTag, src * kPerProducer + i));
      }
    });
  }
  for (int i = 0; i < kPerProducer; ++i) {
    for (int src = 0; src < kProducers; ++src) {
      const auto m = box.take(src, kTag);
      ASSERT_EQ(mp::from_bytes<int>(m.payload)[0], src * kPerProducer + i)
          << "source " << src << " out of order at " << i;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxStress, ShutdownReleasesBlockedTakerDuringFlood) {
  // The taker waits on a tag the producers never send, so it is parked on
  // the condvar slow path while deposits keep arming the sleeping-flag
  // handshake. shutdown() from yet another thread must cut through.
  mp::Mailbox box;
  std::atomic<bool> stop{false};
  std::atomic<bool> aborted{false};
  std::vector<std::thread> producers;
  for (int src = 0; src < 2; ++src) {
    producers.emplace_back([&, src] {
      // Bounded flood: enough to keep the sleeping-flag handshake busy for
      // the whole test, without letting a generous scheduler timeslice pile
      // up an unbounded backlog.
      for (int i = 0; i < 20000 && !stop.load(std::memory_order_acquire);
           ++i) {
        box.deposit(make_msg(src, /*tag=*/1, i));
      }
    });
  }
  std::thread taker([&] {
    try {
      (void)box.take(0, /*tag=*/2);
    } catch (const mp::ClusterAborted&) {
      aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.shutdown();
  taker.join();
  EXPECT_TRUE(aborted.load());
  stop.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  // Pre-shutdown deposits stay queued (clear() owns discarding them), but
  // post-shutdown deposits are dropped.
  const std::size_t queued = box.pending();
  box.deposit(make_msg(0, 1, 0));
  EXPECT_EQ(box.pending(), queued);
}

TEST(MailboxStress, PoisonReleasesBlockedTakerDuringFlood) {
  mp::Mailbox box;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    for (int i = 0; i < 20000 && !stop.load(std::memory_order_acquire); ++i) {
      box.deposit(make_msg(1, /*tag=*/1, i));
    }
  });
  std::thread taker([&] {
    try {
      (void)box.take(1, /*tag=*/2);
    } catch (const mp::PeerFailed& e) {
      EXPECT_EQ(e.peer(), 3);
      failed = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.poison(mp::FailNotice{.what = "injected", .peer = 3, .peer_failed = true});
  taker.join();
  EXPECT_TRUE(failed.load());
  stop.store(true, std::memory_order_release);
  producer.join();
}

// --- fault-injector interleavings at cluster level --------------------------

TEST(MailboxStress, DelayedFramesStillMatchInSendOrder) {
  // A delay rule reshuffles virtual arrival stamps between two senders, so
  // the receiving mailbox sees interleavings that never occur fault-free.
  // Per-sender FIFO is a deposit-order property and must survive on every
  // backend.
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  cluster.set_fault_plan(FaultPlan{
      .frames = {FrameRule{.from = 1, .to = 0, .after_nth = 0, .count = 50,
                           .fault = FrameFault::kDelay,
                           .delay_seconds = 0.25}}});
  constexpr int kRounds = 100;
  cluster.run([&](mp::Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < kRounds; ++i) {
        EXPECT_EQ(p.recv_value<int>(1, /*tag=*/7), 100 + i);
        EXPECT_EQ(p.recv_value<int>(2, /*tag=*/7), 200 + i);
      }
    } else {
      for (int i = 0; i < kRounds; ++i) {
        p.send_value(0, /*tag=*/7, static_cast<int>(p.rank()) * 100 + i);
      }
    }
  });
  cluster.set_fault_plan(FaultPlan{});
}

TEST(MailboxStress, KillDuringFloodReleasesReceiverWithPeerFailed) {
  // Rank 1 dies mid-flood; rank 0 is blocked in recv on it. The failure
  // must surface as PeerFailed through the mailbox poison path — never a
  // hang — on every backend.
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  cluster.set_fault_plan(
      FaultPlan{.kills = {KillRule{.rank = 1, .after_sends = 25}}});
  std::atomic<bool> observed{false};
  cluster.run([&](mp::Process& p) {
    try {
      if (p.rank() == 0) {
        for (int i = 0; i < 100; ++i) {
          (void)p.recv_value<int>(1, /*tag=*/3);
        }
        FAIL() << "rank 0 outlived its dead peer's message stream";
      } else {
        for (int i = 0; i < 100; ++i) p.send_value(0, /*tag=*/3, i);
      }
    } catch (const mp::PeerFailed& e) {
      EXPECT_EQ(e.peer(), 1);
      observed = true;
      // Recover: the survivor agreement fences this rank's queue, dropping
      // the dead peer's unconsumed backlog.
      const auto agreement = p.agree_on_survivors();
      EXPECT_EQ(agreement.survivors, (std::vector<mp::Rank>{0}));
    }
    // Rank 1's own RankKilled propagates: Cluster::run records the death.
  });
  EXPECT_TRUE(observed.load());
  cluster.set_fault_plan(FaultPlan{});
}

}  // namespace
}  // namespace stance
