// Serving-layer tests (stance/service.hpp): admission control, the plan
// cache's byte-identity oracle (a warm job's schedule/plan must equal a cold
// build member-for-member), staleness (evicted / rotated / remapped entries
// miss), batching, per-tenant accounting, and a concurrent-submit stress
// run (the TSan matrix executes this suite on every transport).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "stance/stance.hpp"

namespace stance {
namespace {

std::shared_ptr<const graph::Csr> shared_mesh(int vertices = 900, unsigned seed = 33) {
  return std::make_shared<graph::Csr>(
      graph::random_delaunay(vertices, seed));
}

SessionConfig job_config() {
  SessionConfig cfg;
  cfg.ordering = order::Method::kHilbert;  // fast; spectral tested elsewhere
  cfg.build = sched::BuildMethod::kSort2;
  return cfg;  // cfg.machine is ignored by the service (it owns the fleet)
}

JobSpec job_for(std::shared_ptr<const graph::Csr> mesh, std::string tenant = "a",
                int iterations = 3) {
  JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.mesh = std::move(mesh);
  spec.config = job_config();
  spec.iterations = iterations;
  return spec;
}

// --- admission ---------------------------------------------------------------

TEST(ServiceAdmission, RejectsWithReasonWhenSaturated) {
  ServiceOptions opts;
  opts.max_in_flight = 2;
  Service svc(sim::MachineSpec::sun4_ethernet(3), opts);
  const auto mesh = shared_mesh();

  EXPECT_TRUE(svc.submit(job_for(mesh)).accepted);
  EXPECT_TRUE(svc.submit(job_for(mesh)).accepted);
  const Admission third = svc.submit(job_for(mesh));
  EXPECT_FALSE(third.accepted);
  EXPECT_EQ(third.reason, RejectReason::kSaturated);
  EXPECT_NE(third.detail.find("max_in_flight"), std::string::npos);

  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.queued, 2u);

  // Draining frees capacity; the same spec is admitted again.
  EXPECT_EQ(svc.drain().size(), 2u);
  EXPECT_TRUE(svc.submit(job_for(mesh)).accepted);
}

TEST(ServiceAdmission, RejectsInvalidSpecs) {
  Service svc(sim::MachineSpec::sun4_ethernet(4));
  const auto mesh = shared_mesh();

  JobSpec no_mesh = job_for(mesh);
  no_mesh.mesh = nullptr;
  EXPECT_EQ(svc.submit(std::move(no_mesh)).reason, RejectReason::kInvalidSpec);

  EXPECT_EQ(svc.submit(job_for(mesh, "a", 0)).reason, RejectReason::kInvalidSpec);

  JobSpec short_weights = job_for(mesh);
  short_weights.weights = {1.0, 1.0};  // fleet has 4 ranks
  EXPECT_EQ(svc.submit(std::move(short_weights)).reason, RejectReason::kInvalidSpec);

  JobSpec bad_weight = job_for(mesh);
  bad_weight.weights = {1.0, 1.0, -1.0, 1.0};
  EXPECT_EQ(svc.submit(std::move(bad_weight)).reason, RejectReason::kInvalidSpec);

  EXPECT_EQ(svc.submit(job_for(shared_mesh(3, 1))).reason, RejectReason::kInvalidSpec);

  EXPECT_EQ(svc.stats().rejected, 5u);
  EXPECT_EQ(svc.stats().submitted, 0u);
  EXPECT_EQ(reject_reason_name(RejectReason::kInvalidSpec),
            std::string("invalid-spec"));
}

// --- plan cache: warm == cold ------------------------------------------------

TEST(ServiceCache, WarmJobSkipsInspectorAndMatchesColdRun) {
  ServiceOptions opts;
  opts.batching = false;
  Service svc(sim::MachineSpec::sun4_ethernet(4), opts);
  const auto mesh = shared_mesh();

  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  const auto cold = svc.drain();
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_FALSE(cold[0].plan_cache_hit);
  EXPECT_GT(cold[0].build_seconds, 0.0);

  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  const auto warm = svc.drain();
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_TRUE(warm[0].plan_cache_hit);
  // Warm jobs pay no Phase B at all — the latency win the bench gates.
  EXPECT_DOUBLE_EQ(warm[0].build_seconds, 0.0);
  // Identical cached artifacts drive an identical loop phase: same virtual
  // makespan, same arithmetic, bit-equal checksum.
  EXPECT_DOUBLE_EQ(warm[0].loop_seconds, cold[0].loop_seconds);
  EXPECT_DOUBLE_EQ(warm[0].checksum, cold[0].checksum);
  EXPECT_LT(warm[0].charged_seconds, cold[0].charged_seconds);

  const auto s = svc.stats();
  EXPECT_EQ(s.plan_cache.hits, 1u);
  EXPECT_EQ(s.plan_cache.misses, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(ServiceCache, CachedPlanByteIdenticalToIndependentColdBuild) {
  // Oracle: rebuild Phase B by hand on a fresh cluster (same fleet, same
  // node map, same inputs) and compare the cached artifacts member-for-
  // member — schedule, localized graph, AND coalesce plan, stamps included.
  const auto fleet = sim::MachineSpec::sun4_ethernet(4);
  ServiceOptions opts;
  opts.coalesce = true;  // exercise the full cached product
  Service svc(fleet, opts, mp::NodeMap::contiguous(4, 2));
  const auto mesh = shared_mesh();
  const JobSpec spec = job_for(mesh);

  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  ASSERT_EQ(svc.drain().size(), 1u);
  const auto cached = svc.cached_plan_for(spec);
  ASSERT_NE(cached, nullptr);
  ASSERT_EQ(cached->per_rank.size(), 4u);
  ASSERT_EQ(cached->coalesce.size(), 4u);

  // Independent cold build, no service involved.
  const auto perm = order::compute(*mesh, spec.config.ordering, spec.config.seed);
  const graph::Csr ordered = mesh->permuted(perm);
  std::vector<double> weights;
  for (const auto& node : fleet.nodes) weights.push_back(node.speed);
  const auto part =
      partition::IntervalPartition::from_weights(ordered.num_vertices(), weights);
  mp::Cluster cluster(fleet, mp::NodeMap::contiguous(4, 2));
  std::vector<sched::InspectorResult> ref(4);
  std::vector<sched::CoalescePlan> ref_plans(4);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    ref[r] = sched::build_schedule(p, ordered, part, spec.config.build, spec.config.cpu);
    ref_plans[r] = sched::coalesce(p, ref[r].schedule, spec.config.cpu,
                                   ServiceOptions{}.coalesce_opts);
  });

  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(cached->per_rank[r].schedule, ref[r].schedule) << "rank " << r;
    EXPECT_EQ(cached->per_rank[r].lgraph, ref[r].lgraph) << "rank " << r;
    EXPECT_EQ(cached->coalesce[r], ref_plans[r]) << "rank " << r;
  }
}

TEST(ServiceCache, MatchesSessionResultsExactly) {
  // The service is a serving wrapper, not a different runtime: one job must
  // reproduce Session::run_static bit-for-bit (checksum) and tick-for-tick
  // (virtual seconds).
  const auto fleet = sim::MachineSpec::sun4_ethernet(4);
  Service svc(fleet);
  const auto mesh = shared_mesh();
  ASSERT_TRUE(svc.submit(job_for(mesh, "a", 5)).accepted);
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 1u);

  SessionConfig cfg = job_config();
  cfg.machine = fleet;
  Session session(*mesh, cfg);
  const auto reference = session.run_static(5);

  EXPECT_DOUBLE_EQ(results[0].checksum, reference.checksum);
  EXPECT_DOUBLE_EQ(results[0].loop_seconds, reference.loop_seconds);
  EXPECT_DOUBLE_EQ(results[0].build_seconds, reference.build_seconds);
}

// --- staleness ---------------------------------------------------------------

TEST(ServiceStaleness, EvictedEntryMissesAndRebuilds) {
  ServiceOptions opts;
  opts.plan_cache_capacity = 1;
  opts.batching = false;
  Service svc(sim::MachineSpec::sun4_ethernet(3), opts);
  const auto mesh_a = shared_mesh(700, 1);
  const auto mesh_b = shared_mesh(740, 2);

  ASSERT_TRUE(svc.submit(job_for(mesh_a)).accepted);
  ASSERT_TRUE(svc.submit(job_for(mesh_b)).accepted);  // evicts mesh_a's plan
  svc.drain();
  EXPECT_EQ(svc.cached_plan_for(job_for(mesh_a)), nullptr);
  EXPECT_NE(svc.cached_plan_for(job_for(mesh_b)), nullptr);
  EXPECT_EQ(svc.stats().plan_cache.evictions, 1u);

  ASSERT_TRUE(svc.submit(job_for(mesh_a)).accepted);
  const auto again = svc.drain();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_FALSE(again[0].plan_cache_hit);  // cold rebuild, not a stale reuse
  EXPECT_GT(again[0].build_seconds, 0.0);
}

TEST(ServiceStaleness, DelegateRotationInvalidatesCoalescedPlans) {
  // A rotated delegate bumps NodeMap::generation(); the key carries it, so
  // the pre-rotation plan (whose frames route through the old delegate) is
  // unreachable — the remedy for the classic stale-routing bug.
  ServiceOptions opts;
  opts.coalesce = true;
  Service svc(sim::MachineSpec::sun4_ethernet(4), opts, mp::NodeMap::contiguous(4, 2));
  const auto mesh = shared_mesh();
  const JobSpec spec = job_for(mesh);

  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  svc.drain();
  ASSERT_NE(svc.cached_plan_for(spec), nullptr);
  const PlanKey before = svc.plan_key_for(spec);

  const std::vector<mp::Rank> rotated{1, 3};  // nodes {0,1},{2,3}: non-default
  svc.cluster().set_delegates(rotated);

  EXPECT_NE(svc.plan_key_for(spec).map_generation, before.map_generation);
  EXPECT_EQ(svc.cached_plan_for(spec), nullptr);  // old entry unreachable

  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  const auto rebuilt = svc.drain();
  ASSERT_EQ(rebuilt.size(), 1u);
  EXPECT_FALSE(rebuilt[0].plan_cache_hit);
  // The rebuilt plan routes through the rotated delegates and carries the
  // new generation stamp.
  const auto plan = svc.cached_plan_for(spec);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->coalesce[0].my_delegate, 1);
  EXPECT_EQ(plan->coalesce[2].my_delegate, 3);
  EXPECT_EQ(plan->coalesce[0].map_generation, svc.cluster().node_map().generation());
}

TEST(ServiceStaleness, RemappedPartitionMisses) {
  ServiceOptions opts;
  opts.batching = false;
  Service svc(sim::MachineSpec::sun4_ethernet(3), opts);
  const auto mesh = shared_mesh();

  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  svc.drain();
  ASSERT_NE(svc.cached_plan_for(job_for(mesh)), nullptr);

  // Same mesh, different decomposition: the partition fingerprint differs,
  // so the cached schedules (built for other intervals) cannot be reused.
  JobSpec remapped = job_for(mesh);
  remapped.weights = {2.0, 1.0, 1.0};
  EXPECT_NE(svc.plan_key_for(remapped).partition_fingerprint,
            svc.plan_key_for(job_for(mesh)).partition_fingerprint);
  EXPECT_EQ(svc.cached_plan_for(remapped), nullptr);

  JobSpec remapped2 = remapped;
  ASSERT_TRUE(svc.submit(std::move(remapped2)).accepted);
  const auto r = svc.drain();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_FALSE(r[0].plan_cache_hit);
  // Both decompositions now coexist in the cache.
  EXPECT_NE(svc.cached_plan_for(job_for(mesh)), nullptr);
  EXPECT_NE(svc.cached_plan_for(remapped), nullptr);
}

// --- batching & accounting ---------------------------------------------------

TEST(ServiceBatching, IdenticalBackToBackJobsShareOneExecution) {
  Service svc(sim::MachineSpec::sun4_ethernet(3));
  const auto mesh = shared_mesh();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(svc.submit(job_for(mesh, i % 2 == 0 ? "alice" : "bob")).accepted);
  }
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 4u);

  const auto s = svc.stats();
  EXPECT_EQ(s.executions, 1u);  // one Phase B + C for all four
  EXPECT_EQ(s.batched_jobs, 4u);
  double total_charged = 0.0;
  for (const auto& r : results) {
    EXPECT_EQ(r.batch_size, 4);
    EXPECT_DOUBLE_EQ(r.charged_seconds,
                     (r.build_seconds + r.loop_seconds) / 4.0);
    total_charged += r.charged_seconds;
  }
  // The bill is conserved: amortized charges sum to the execution's cost.
  EXPECT_NEAR(total_charged, results[0].build_seconds + results[0].loop_seconds,
              1e-12);
  // Tenants split the bill evenly (two jobs each).
  ASSERT_EQ(s.tenants.count("alice"), 1u);
  ASSERT_EQ(s.tenants.count("bob"), 1u);
  EXPECT_DOUBLE_EQ(s.tenants.at("alice").charged_seconds,
                   s.tenants.at("bob").charged_seconds);
  EXPECT_EQ(s.tenants.at("alice").jobs, 2u);
}

TEST(ServiceBatching, DifferentSpecsBreakTheBatch) {
  Service svc(sim::MachineSpec::sun4_ethernet(3));
  const auto mesh = shared_mesh();
  ASSERT_TRUE(svc.submit(job_for(mesh, "a", 3)).accepted);
  ASSERT_TRUE(svc.submit(job_for(mesh, "a", 4)).accepted);  // different budget
  ASSERT_TRUE(svc.submit(job_for(mesh, "a", 4)).accepted);
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(svc.stats().executions, 2u);
  EXPECT_EQ(results[0].batch_size, 1);
  EXPECT_EQ(results[1].batch_size, 2);
}

TEST(ServiceBatching, DisabledBatchingExecutesEachJob) {
  ServiceOptions opts;
  opts.batching = false;
  Service svc(sim::MachineSpec::sun4_ethernet(3), opts);
  const auto mesh = shared_mesh();
  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  ASSERT_TRUE(svc.submit(job_for(mesh)).accepted);
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(svc.stats().executions, 2u);
  EXPECT_EQ(results[1].batch_size, 1);
  EXPECT_TRUE(results[1].plan_cache_hit);  // batching off, caching still on
}

TEST(ServiceAccounting, TenantsAreChargedTheFleetMakespanTheyUsed) {
  ServiceOptions opts;
  opts.batching = false;
  Service svc(sim::MachineSpec::sun4_ethernet(3), opts);
  const auto mesh_a = shared_mesh(700, 1);
  const auto mesh_b = shared_mesh(740, 2);
  ASSERT_TRUE(svc.submit(job_for(mesh_a, "alice")).accepted);
  ASSERT_TRUE(svc.submit(job_for(mesh_b, "bob")).accepted);
  ASSERT_TRUE(svc.submit(job_for(mesh_a, "alice")).accepted);  // warm
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 3u);

  double expected_total = 0.0;
  for (const auto& r : results) {
    expected_total += r.charged_seconds;
    EXPECT_GT(r.loop_stats.messages_sent, 0u);  // comm stats ride along
  }
  const auto s = svc.stats();
  ASSERT_EQ(s.tenants.size(), 2u);
  const auto& alice = s.tenants.at("alice");
  const auto& bob = s.tenants.at("bob");
  EXPECT_EQ(alice.jobs, 2u);
  EXPECT_EQ(alice.cache_hits, 1u);
  EXPECT_EQ(bob.jobs, 1u);
  EXPECT_EQ(bob.cache_hits, 0u);
  EXPECT_NEAR(alice.charged_seconds + bob.charged_seconds, expected_total, 1e-12);
  EXPECT_GT(alice.comm.messages_sent, 0u);
}

// --- concurrency -------------------------------------------------------------

TEST(ServiceStress, ConcurrentSubmitWhileDraining) {
  // Submitters race the draining thread; TSan (CI matrix) watches the locks.
  // Small meshes keep the shm/tcp re-runs of this suite fast.
  ServiceOptions opts;
  opts.max_in_flight = 1024;
  opts.plan_cache_capacity = 4;
  Service svc(sim::MachineSpec::sun4_ethernet(3), opts);
  const auto mesh_a = shared_mesh(600, 5);
  const auto mesh_b = shared_mesh(640, 6);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 10;
  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        auto spec = job_for(j % 2 == 0 ? mesh_a : mesh_b,
                            "tenant" + std::to_string(t), 1 + j % 2);
        if (svc.submit(std::move(spec)).accepted) ++accepted;
        (void)svc.stats();  // snapshot readers race the drain too
      }
    });
  }

  std::vector<JobResult> results;
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load()) {
      auto r = svc.drain();
      results.insert(results.end(), r.begin(), r.end());
    }
  });

  for (auto& t : submitters) t.join();
  stop.store(true);
  drainer.join();
  // Pick up anything submitted after the drainer's last sweep.
  auto rest = svc.drain();
  results.insert(results.end(), rest.begin(), rest.end());

  EXPECT_EQ(static_cast<int>(results.size()), accepted.load());
  EXPECT_EQ(svc.stats().completed, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(svc.stats().queued, 0u);

  // Determinism holds under concurrency: every result must reproduce one of
  // the two spec signatures' reference checksums.
  ServiceOptions ref_opts;
  ref_opts.batching = false;
  Service ref(sim::MachineSpec::sun4_ethernet(3), ref_opts);
  ASSERT_TRUE(ref.submit(job_for(mesh_a, "ref", 1)).accepted);
  ASSERT_TRUE(ref.submit(job_for(mesh_b, "ref", 2)).accepted);
  const auto ref_results = ref.drain();
  for (const auto& r : results) {
    if (r.checksum == ref_results[0].checksum || r.checksum == ref_results[1].checksum) {
      continue;
    }
    // Jobs alternate (mesh_a, 1 iter) and (mesh_b, 2 iters); every result
    // must match one of the two reference checksums.
    ADD_FAILURE() << "nondeterministic checksum " << r.checksum;
  }
}

TEST(ServiceStress, ConcurrentDrainIsRejected) {
  Service svc(sim::MachineSpec::sun4_ethernet(3));
  const auto mesh = shared_mesh(600, 5);
  // Enough identical-mesh jobs that the first drain is still busy when the
  // second starts; batching is on, so they may collapse to few executions.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(svc.submit(job_for(mesh, "a", 1 + i % 3)).accepted);
  }
  std::atomic<bool> second_threw{false};
  std::atomic<bool> first_started{false};
  std::thread first([&] {
    first_started.store(true);
    (void)svc.drain();
  });
  while (!first_started.load()) std::this_thread::yield();
  try {
    (void)svc.drain();  // either finishes after `first` or throws single-flight
  } catch (const std::invalid_argument&) {
    second_threw.store(true);
  }
  first.join();
  (void)second_threw;  // timing-dependent either way; the invariant is no crash
  EXPECT_EQ(svc.stats().queued, 0u);
}

}  // namespace
}  // namespace stance
