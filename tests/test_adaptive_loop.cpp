// The closed adaptive loop (lb::AdaptiveExecutor with node-aware options):
// in-cycle delegate rotation, measured-cost coalescing feedback, and the
// stale-plan safeguards around remaps. The re-decided communication plans
// must never change a byte of the computation — every test here holds the
// final values bit-equal to the sequential reference while asserting the
// loop actually re-decided something.
#include <gtest/gtest.h>

#include <vector>

#include "exec/irregular_loop.hpp"
#include "graph/builders.hpp"
#include "lb/adaptive_executor.hpp"
#include "mp/cluster.hpp"
#include "sched/coalesce.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using graph::port_coupled;
using lb::AdaptiveExecutor;
using lb::AdaptiveOptions;
using lb::AdaptiveReport;
using mp::NodeMap;
using partition::IntervalPartition;

AdaptiveOptions loop_opts(bool rotate, bool feedback) {
  AdaptiveOptions o;
  o.lb.check_interval = 10;
  o.lb.profitability_factor = 0.25;
  o.lb.objective = partition::ArrangementObjective::from_network(
      sim::NetworkModel::ethernet_10mbps(), sizeof(double));
  o.cpu = sim::CpuCostModel::sun4();
  o.loop = exec::LoopCostModel::sun4();
  o.coalesce = true;
  o.coalesce_opts.policy = sched::CoalescePolicy::kAdaptive;
  o.coalesce_opts.bytes_per_elem = sizeof(double);
  o.rotate_delegates = rotate;
  o.measured_feedback = feedback;
  return o;
}

std::vector<double> initial_y(const IntervalPartition& part, int rank) {
  std::vector<double> y(static_cast<std::size_t>(part.size(rank)));
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 1.0 + static_cast<double>(
                     part.to_global(rank, static_cast<graph::Vertex>(i)) % 11);
  }
  return y;
}

std::vector<double> reference_final(const graph::Csr& g, int iters) {
  std::vector<double> y(static_cast<std::size_t>(g.num_vertices()));
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    y[static_cast<std::size_t>(v)] = 1.0 + static_cast<double>(v % 11);
  }
  exec::IrregularLoop::reference_iterate(g, y, iters);
  return y;
}

void expect_matches_reference(const std::vector<std::vector<double>>& finals,
                              const IntervalPartition& part,
                              const std::vector<double>& reference) {
  for (int r = 0; r < part.nparts(); ++r) {
    for (graph::Vertex i = 0; i < part.size(r); ++i) {
      EXPECT_EQ(finals[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                reference[static_cast<std::size_t>(part.to_global(r, i))])
          << "rank " << r << " local " << i;
    }
  }
}

struct LoopRun {
  double makespan = 0.0;
  AdaptiveReport report;
  std::vector<std::vector<double>> finals;
  IntervalPartition final_part;
};

/// 8 ranks on 2 nodes of 4; the default delegates (ranks 0 and 4) run at
/// quarter speed, so every coalesced frame serializes at quarter speed
/// until the loop rotates the role to a full-speed co-resident.
LoopRun run_slow_delegate_loop(const graph::Csr& g, const IntervalPartition& part,
                               AdaptiveOptions opts, int iters) {
  const int nprocs = 8;
  auto spec = sim::MachineSpec::uniform_ethernet(nprocs);
  spec.nodes[0].speed = 0.25;
  spec.nodes[4].speed = 0.25;
  mp::Cluster cluster(std::move(spec), NodeMap::contiguous(nprocs, 4));
  LoopRun out;
  out.finals.resize(nprocs);
  std::vector<AdaptiveReport> reports(nprocs);
  cluster.run([&](mp::Process& p) {
    AdaptiveExecutor ax(p, g, part, opts);
    auto y = initial_y(ax.partition(), p.rank());
    reports[static_cast<std::size_t>(p.rank())] = ax.run(p, y, iters);
    out.finals[static_cast<std::size_t>(p.rank())] = std::move(y);
    if (p.is_root()) out.final_part = ax.partition();
  });
  out.makespan = cluster.makespan();
  out.report = reports[0];
  return out;
}

TEST(AdaptiveLoop, RotationClosesTheLoopAndStaysByteIdentical) {
  const graph::Csr g = port_coupled(8, 80, 12);
  const auto part = IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>(8, 1.0));
  constexpr int kIters = 50;

  const LoopRun control = run_slow_delegate_loop(g, part, loop_opts(false, false), kIters);
  const LoopRun full = run_slow_delegate_loop(g, part, loop_opts(true, true), kIters);

  // The loop must actually re-decide: at least one rotation installed, and
  // the plan rebuilt for it (outside any remap).
  EXPECT_GE(full.report.rotations, 1);
  EXPECT_GE(full.report.replans, 1);
  EXPECT_EQ(control.report.rotations, 0);
  // Rotation moves the frame funnel off the quarter-speed CPUs; with its
  // decision collectives and plan rebuilds charged it must still win.
  EXPECT_LT(full.makespan, control.makespan)
      << "control=" << control.makespan << " full=" << full.makespan;

  // Byte-equivalence oracle: same bits as the sequential reference, both
  // modes, whatever plans were installed along the way.
  const auto reference = reference_final(g, kIters);
  expect_matches_reference(control.finals, control.final_part, reference);
  expect_matches_reference(full.finals, full.final_part, reference);
}

TEST(AdaptiveLoop, RemapRebuildsCoalescePlan) {
  // Regression test for the stale-plan bug: an executor that keeps its
  // coalesce plan across a remap silently uses pre-remap frame routing.
  // The adaptive loop must rebuild the plan with the schedule, keep it
  // matching (CoalescePlan::matches), and keep producing reference bits.
  const graph::Csr g = port_coupled(4, 60, 8);
  const auto part = IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>(4, 1.0));
  constexpr int kBefore = 7;
  constexpr int kAfter = 9;
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4),
                      NodeMap::contiguous(4, 2));
  std::vector<std::vector<double>> finals(4);
  IntervalPartition final_part;
  cluster.run([&](mp::Process& p) {
    AdaptiveOptions opts = loop_opts(false, false);
    opts.enable_lb = false;  // the remap below is explicit + deterministic
    AdaptiveExecutor ax(p, g, part, opts);
    ASSERT_TRUE(ax.coalescing());
    const auto fingerprint_before = ax.coalesce_plan().schedule_fingerprint;
    EXPECT_TRUE(ax.coalesce_plan().matches(ax.inspector().schedule, p.nodes()));

    auto y = initial_y(ax.partition(), p.rank());
    (void)ax.run(p, y, kBefore);

    // Remap to skewed sizes: the communication pattern changes, so a kept
    // plan would be stale — the executor must have rebuilt it.
    const auto skewed = IntervalPartition::from_weights(
        g.num_vertices(), std::vector<double>{2.0, 1.0, 1.0, 2.0});
    ax.repartition(p, skewed, y);
    EXPECT_NE(ax.coalesce_plan().schedule_fingerprint, fingerprint_before);
    EXPECT_TRUE(ax.coalesce_plan().matches(ax.inspector().schedule, p.nodes()));

    (void)ax.run(p, y, kAfter);
    finals[static_cast<std::size_t>(p.rank())] = std::move(y);
    if (p.is_root()) final_part = ax.partition();
  });
  expect_matches_reference(finals, final_part, reference_final(g, kBefore + kAfter));
}

TEST(AdaptiveLoop, MeasuredFeedbackReplansFromObservation) {
  // A node whose ranks are ALL slow has no rotation remedy — the only
  // winning move is to stop framing its costly pairs. The a-priori verdict
  // cannot see the slow CPU (uniform slowdown is invisible to the model);
  // the measured table can, because the measured/modeled ratio is
  // asymmetric between the slow and fast endpoints.
  // ports=20 keeps every node pair framed under the reference-speed
  // estimate (crossover ~22 elements/message on this network), while the
  // 10x-slow source delegate moves the *measured* crossover far past it.
  const graph::Csr g = port_coupled(8, 80, 20);
  const auto part = IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>(8, 1.0));
  constexpr int kIters = 100;
  auto run_mode = [&](bool feedback) {
    auto spec = sim::MachineSpec::uniform_ethernet(8);
    for (int r = 0; r < 4; ++r) spec.nodes[static_cast<std::size_t>(r)].speed = 0.1;
    mp::Cluster cluster(std::move(spec), NodeMap::contiguous(8, 4));
    LoopRun out;
    out.finals.resize(8);
    std::vector<AdaptiveReport> reports(8);
    cluster.run([&](mp::Process& p) {
      AdaptiveOptions opts = loop_opts(false, feedback);
      // Keep the check cadence but make remaps unprofitable: the partition
      // stays put, isolating the feedback effect. A wide interval amortizes
      // the per-check measurement exchange over more iterations.
      opts.lb.profitability_factor = 1e30;
      opts.lb.check_interval = 20;
      AdaptiveExecutor ax(p, g, part, opts);
      auto y = initial_y(ax.partition(), p.rank());
      reports[static_cast<std::size_t>(p.rank())] = ax.run(p, y, kIters);
      out.finals[static_cast<std::size_t>(p.rank())] = std::move(y);
      if (p.is_root()) out.final_part = ax.partition();
    });
    out.makespan = cluster.makespan();
    out.report = reports[0];
    return out;
  };

  const LoopRun apriori = run_mode(false);
  const LoopRun measured = run_mode(true);
  // The observed slowdown must re-decide the plan exactly once: demoted
  // pairs ship no frames afterwards, but their measured slowdown is
  // retained (merged per pair, not replaced), so the verdict stays put
  // instead of oscillating frame/demote with a rebuild every check.
  EXPECT_EQ(measured.report.replans, 1);
  EXPECT_EQ(apriori.report.replans, 0);
  // ...demoting the slow node's frames, which the blind estimate keeps —
  // so observation must win outright, measurement collectives included.
  EXPECT_LT(measured.makespan, apriori.makespan)
      << "apriori=" << apriori.makespan << " measured=" << measured.makespan;

  const auto reference = reference_final(g, kIters);
  expect_matches_reference(apriori.finals, apriori.final_part, reference);
  expect_matches_reference(measured.finals, measured.final_part, reference);
}

TEST(AdaptiveLoop, CheckNowReportsRotationAndReplanOutcome) {
  const graph::Csr g = port_coupled(4, 60, 8);
  const auto part = IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>(4, 1.0));
  auto spec = sim::MachineSpec::uniform_ethernet(4);
  spec.nodes[0].speed = 0.25;  // default delegate of node 0 is slow
  spec.nodes[2].speed = 0.25;  // default delegate of node 1 is slow
  mp::Cluster cluster(std::move(spec), NodeMap::contiguous(4, 2));
  cluster.run([&](mp::Process& p) {
    AdaptiveOptions opts = loop_opts(true, false);
    opts.enable_lb = false;              // drive the checks by hand below
    opts.lb.profitability_factor = 1e30;  // and keep the partition put
    AdaptiveExecutor ax(p, g, part, opts);
    auto y = initial_y(ax.partition(), p.rank());
    (void)ax.run(p, y, 10);  // one interval of frame measurements
    const auto outcome = ax.check_now(p, y);
    EXPECT_TRUE(outcome.rotated);
    EXPECT_TRUE(outcome.replanned);
    EXPECT_GT(outcome.retune_seconds, 0.0);
    // The rotated-to delegates are the full-speed co-residents.
    EXPECT_EQ(p.nodes().delegates(), (std::vector<mp::Rank>{1, 3}));
    EXPECT_TRUE(ax.coalesce_plan().matches(ax.inspector().schedule, p.nodes()));
    // A second check with no new frame traffic shipped since the rotation
    // keeps the assignment (idle nodes keep their incumbent delegates).
    const auto again = ax.check_now(p, y);
    EXPECT_FALSE(again.rotated);
    EXPECT_EQ(p.nodes().delegates(), (std::vector<mp::Rank>{1, 3}));
  });
}

TEST(AdaptiveLoop, OptionsRequireCoalesceForRotationAndFeedback) {
  const graph::Csr g = port_coupled(2, 40, 4);
  const auto part = IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>(2, 1.0));
  mp::Cluster cluster(sim::MachineSpec::uniform(2), NodeMap::contiguous(2, 2));
  EXPECT_THROW(cluster.run([&](mp::Process& p) {
                 AdaptiveOptions opts;
                 opts.rotate_delegates = true;  // but coalesce is off
                 AdaptiveExecutor ax(p, g, part, opts);
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace stance
