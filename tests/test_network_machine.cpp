// Unit tests for sim::NetworkModel and sim::MachineSpec presets.
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/network_model.hpp"

namespace stance::sim {
namespace {

TEST(NetworkModel, IdealIsFree) {
  const auto m = NetworkModel::ideal();
  EXPECT_DOUBLE_EQ(m.wire_time(0), 0.0);
  EXPECT_NEAR(m.wire_time(1 << 20), 0.0, 1e-5);
  EXPECT_DOUBLE_EQ(m.send_overhead, 0.0);
}

TEST(NetworkModel, EthernetLatencyDominatesSmallMessages) {
  const auto m = NetworkModel::ethernet_10mbps();
  const double small = m.wire_time(8);
  const double large = m.wire_time(100000);
  EXPECT_GT(small, 1e-3);             // ~latency
  EXPECT_LT(small, 2e-3);
  EXPECT_GT(large, 0.09);             // bandwidth term dominates
}

TEST(NetworkModel, WireTimeScalesWithBytes) {
  const auto m = NetworkModel::ethernet_10mbps();
  EXPECT_NEAR(m.wire_time(2000) - m.wire_time(1000), 1000.0 / m.bandwidth, 1e-12);
}

TEST(NetworkModel, ContentionScalesWireTime) {
  auto m = NetworkModel::ethernet_10mbps();
  const double base = m.wire_time(5000);
  m.contention = 2.0;
  EXPECT_DOUBLE_EQ(m.wire_time(5000), 2.0 * base);
}

TEST(NetworkModel, MulticastSendCount) {
  auto m = NetworkModel::ethernet_10mbps(true);
  EXPECT_DOUBLE_EQ(m.multicast_sends(7), 1.0);
  m.multicast = false;
  EXPECT_DOUBLE_EQ(m.multicast_sends(7), 7.0);
}

TEST(NetworkModel, AtmIsFasterThanEthernet) {
  const auto eth = NetworkModel::ethernet_10mbps();
  const auto atm = NetworkModel::atm_155mbps();
  EXPECT_LT(atm.latency, eth.latency);
  EXPECT_GT(atm.bandwidth, eth.bandwidth);
  EXPECT_TRUE(atm.multicast);
}

TEST(MachineSpec, UniformNodesAllFullSpeed) {
  const auto spec = MachineSpec::uniform(4);
  ASSERT_EQ(spec.size(), 4u);
  for (const auto& n : spec.nodes) EXPECT_DOUBLE_EQ(n.speed, 1.0);
  EXPECT_DOUBLE_EQ(spec.total_speed(), 4.0);
}

TEST(MachineSpec, SpeedSharesSumToOne) {
  const auto spec = MachineSpec::heterogeneous(6, 1);
  const auto shares = spec.speed_shares();
  double sum = 0.0;
  for (const double s : shares) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MachineSpec, Sun4PresetBounds) {
  for (std::size_t n = 1; n <= 5; ++n) {
    const auto spec = MachineSpec::sun4_ethernet(n);
    EXPECT_EQ(spec.size(), n);
    for (const auto& node : spec.nodes) {
      EXPECT_GT(node.speed, 0.9);
      EXPECT_LT(node.speed, 1.1);
    }
    EXPECT_EQ(spec.net.name, "ethernet-10mbps");
  }
  EXPECT_THROW(MachineSpec::sun4_ethernet(6), std::invalid_argument);
  EXPECT_THROW(MachineSpec::sun4_ethernet(0), std::invalid_argument);
}

TEST(MachineSpec, HeterogeneousIsSeedDeterministic) {
  const auto a = MachineSpec::heterogeneous(5, 9);
  const auto b = MachineSpec::heterogeneous(5, 9);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a.nodes[i].speed, b.nodes[i].speed);
  const auto c = MachineSpec::heterogeneous(5, 10);
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i) any_diff |= a.nodes[i].speed != c.nodes[i].speed;
  EXPECT_TRUE(any_diff);
}

TEST(MachineSpec, RejectsEmptyCluster) {
  EXPECT_THROW(MachineSpec::uniform(0), std::invalid_argument);
  EXPECT_THROW(MachineSpec::heterogeneous(0), std::invalid_argument);
}

}  // namespace
}  // namespace stance::sim
