// Shared test fixtures: seeded RNG graphs and partitions, cluster-wide
// schedule construction, and golden comparators. Suites include this instead
// of re-implementing per-file setup helpers.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/builders.hpp"
#include "graph/csr.hpp"
#include "mp/cluster.hpp"
#include "partition/interval.hpp"
#include "sched/inspector.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace stance::test {

/// Builds every rank's CommSchedule for `part` on a uniform simulated
/// cluster — the standard prologue of executor and scheduler suites.
inline std::vector<sched::InspectorResult> build_all_schedules(
    const graph::Csr& g, const partition::IntervalPartition& part,
    sched::BuildMethod method = sched::BuildMethod::kSort2) {
  mp::Cluster cluster(
      sim::MachineSpec::uniform(static_cast<std::size_t>(part.nparts())));
  std::vector<sched::InspectorResult> results(
      static_cast<std::size_t>(part.nparts()));
  cluster.run([&](mp::Process& p) {
    results[static_cast<std::size_t>(p.rank())] =
        sched::build_schedule(p, g, part, method, sim::CpuCostModel::free());
  });
  return results;
}

/// Interval partition of [0, n) into p randomly weighted blocks.
inline partition::IntervalPartition random_partition(graph::Vertex n,
                                                     std::size_t p, Rng& rng) {
  return partition::IntervalPartition::from_weights(n, random_weights(p, rng));
}

/// Deterministic seeded vector in [lo, hi) — golden inputs for kernels.
inline std::vector<double> seeded_values(std::size_t n, std::uint64_t seed,
                                         double lo = -1.0, double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Golden comparator: exact element-wise equality with indexed diagnostics.
template <typename T>
void expect_vectors_eq(const std::vector<T>& actual,
                       const std::vector<T>& golden) {
  ASSERT_EQ(actual.size(), golden.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], golden[i]) << "index " << i;
  }
}

}  // namespace stance::test
