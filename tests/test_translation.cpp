// Tests for the three translation-table designs (paper §3.2, Fig. 3).
#include <gtest/gtest.h>

#include "mp/cluster.hpp"
#include "partition/translation.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace stance::partition {
namespace {

TEST(IntervalTable, LookupMatchesPartition) {
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{3, 5, 2});
  const IntervalTranslationTable table(part);
  for (Vertex g = 0; g < part.total(); ++g) {
    const auto e = table.lookup(g);
    EXPECT_EQ(e.home, part.owner(g));
    EXPECT_EQ(e.local, g - part.first(e.home));
  }
}

TEST(IntervalTable, MemoryIsProportionalToP) {
  // O(p) regardless of the element count: intervals plus the owner() page
  // index, both a small constant number of words per processor.
  const auto small = IntervalTranslationTable(
      IntervalPartition::from_sizes(std::vector<Vertex>{1000000, 1000000}));
  const auto big = IntervalTranslationTable(IntervalPartition::from_sizes(
      std::vector<Vertex>(16, 125000)));
  EXPECT_GE(small.memory_bytes(), 2u * 2 * sizeof(Vertex));
  EXPECT_LE(small.memory_bytes(), 2u * 32 * sizeof(Vertex));
  EXPECT_GE(big.memory_bytes(), 16u * 2 * sizeof(Vertex));
  EXPECT_LE(big.memory_bytes(), 16u * 32 * sizeof(Vertex));
}

TEST(ReplicatedTable, FromPartitionMatches) {
  const auto part = IntervalPartition::from_sizes_arranged(std::vector<Vertex>{4, 3, 3},
                                                           Arrangement{1, 2, 0});
  const auto table = ReplicatedTranslationTable::from_partition(part);
  for (Vertex g = 0; g < part.total(); ++g) {
    const auto e = table.lookup(g);
    EXPECT_EQ(e.home, part.owner(g));
    EXPECT_EQ(e.local, g - part.first(e.home));
  }
  EXPECT_EQ(table.memory_bytes(), 10u * sizeof(TranslationEntry));
}

TEST(ReplicatedTable, FromArbitraryAssignment) {
  // Cyclic distribution over 3 processors — not an interval partition.
  std::vector<Rank> owner_of{0, 1, 2, 0, 1, 2, 0};
  const auto table = ReplicatedTranslationTable::from_assignment(owner_of);
  EXPECT_EQ(table.lookup(0).home, 0);
  EXPECT_EQ(table.lookup(0).local, 0);
  EXPECT_EQ(table.lookup(3).home, 0);
  EXPECT_EQ(table.lookup(3).local, 1);
  EXPECT_EQ(table.lookup(5).home, 2);
  EXPECT_EQ(table.lookup(5).local, 1);
  EXPECT_EQ(table.lookup(6).local, 2);
}

TEST(ReplicatedTable, RejectsNegativeOwner) {
  std::vector<Rank> owner_of{0, -1};
  EXPECT_THROW(ReplicatedTranslationTable::from_assignment(owner_of),
               std::invalid_argument);
}

TEST(DistributedTable, DereferenceMatchesDirectLookup) {
  mp::Cluster cluster(sim::MachineSpec::uniform(4));
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{25, 13, 40, 22});
  Rng rng(8);
  std::vector<Vertex> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(static_cast<Vertex>(rng.below(100)));
  }
  cluster.run([&](mp::Process& p) {
    const DistributedTranslationTable table(p, part);
    const auto entries = table.dereference(p, queries);
    ASSERT_EQ(entries.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(entries[i].home, part.owner(queries[i]));
      EXPECT_EQ(entries[i].local, queries[i] - part.first(entries[i].home));
    }
  });
}

TEST(DistributedTable, ArrangedPartitionStillResolves) {
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  const auto part = IntervalPartition::from_sizes_arranged(std::vector<Vertex>{10, 20, 30},
                                                           Arrangement{2, 0, 1});
  cluster.run([&](mp::Process& p) {
    const DistributedTranslationTable table(p, part);
    std::vector<Vertex> queries{0, 29, 30, 39, 40, 59};
    const auto entries = table.dereference(p, queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(entries[i].home, part.owner(queries[i]));
    }
  });
}

TEST(DistributedTable, MemoryIsBlockSized) {
  mp::Cluster cluster(sim::MachineSpec::uniform(4));
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{25, 25, 25, 25});
  cluster.run([&](mp::Process& p) {
    const DistributedTranslationTable table(p, part);
    // 25 entries per rank + the p-entry block index.
    EXPECT_LE(table.memory_bytes(), 25u * sizeof(TranslationEntry) + 64u);
  });
}

TEST(DistributedTable, DereferenceCostsGrowWithProcessors) {
  // The simple strategy's weakness: message setups scale with p.
  auto measure = [](std::size_t nprocs) {
    mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(nprocs));
    const auto part = IntervalPartition::from_weights(
        1000, std::vector<double>(nprocs, 1.0));
    cluster.run([&](mp::Process& p) {
      const DistributedTranslationTable table(p, part);
      std::vector<Vertex> queries{1, 500, 999};
      (void)table.dereference(p, queries);
    });
    return cluster.makespan();
  };
  EXPECT_LT(measure(2), measure(8));
}

TEST(DistributedTable, EmptyQueryListIsFine) {
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{5, 5});
  cluster.run([&](mp::Process& p) {
    const DistributedTranslationTable table(p, part);
    EXPECT_TRUE(table.dereference(p, {}).empty());
  });
}

}  // namespace
}  // namespace stance::partition
