// Tests for MOVE and MinimizeCostRedistribution (paper Figs. 6-7), checked
// against the exhaustive p! optimum on small processor counts.
#include <gtest/gtest.h>

#include <numeric>

#include "partition/mcr.hpp"
#include "support/rng.hpp"

namespace stance::partition {
namespace {

TEST(MoveElement, PaperExample) {
  // MOVE({1,3,5,4,6}, 5, 0) = {5,1,3,4,6} (paper Fig. 7).
  Arrangement list{1, 3, 5, 4, 6};
  move_element(list, 5, 0);
  EXPECT_EQ(list, (Arrangement{5, 1, 3, 4, 6}));
}

TEST(MoveElement, MoveRight) {
  Arrangement list{0, 1, 2, 3};
  move_element(list, 0, 2);
  EXPECT_EQ(list, (Arrangement{1, 2, 0, 3}));
}

TEST(MoveElement, MoveLeft) {
  Arrangement list{0, 1, 2, 3};
  move_element(list, 3, 1);
  EXPECT_EQ(list, (Arrangement{0, 3, 1, 2}));
}

TEST(MoveElement, MoveToSamePositionIsNoOp) {
  Arrangement list{4, 2, 7};
  move_element(list, 2, 1);
  EXPECT_EQ(list, (Arrangement{4, 2, 7}));
}

TEST(MoveElement, Validation) {
  Arrangement list{0, 1};
  EXPECT_THROW(move_element(list, 5, 0), std::invalid_argument);
  EXPECT_THROW(move_element(list, 0, 2), std::invalid_argument);
}

TEST(MoveElement, IsAlwaysAPermutation) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t p = 2 + rng.below(8);
    Arrangement list(p);
    std::iota(list.begin(), list.end(), 0);
    shuffle(list, rng);
    const Arrangement before = list;
    const Rank c = before[rng.below(p)];
    move_element(list, c, rng.below(p));
    Arrangement sorted = list;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(sorted[i], static_cast<Rank>(i));
  }
}

TEST(Mcr, RecoversPaperFigure5Quality) {
  // MCR must find an arrangement at least as good as the paper's
  // (P0,P3,P1,P2,P4), which overlaps 64 elements on the Fig. 5 instance
  // under exact interval arithmetic.
  const std::vector<double> old_w{0.27, 0.18, 0.34, 0.07, 0.14};
  const std::vector<double> new_w{0.10, 0.13, 0.29, 0.24, 0.24};
  const auto from = IntervalPartition::from_weights(100, old_w);
  const auto to = repartition_mcr(from, new_w);
  EXPECT_GE(from.overlap(to), 64);
}

TEST(Mcr, IdenticalWeightsKeepEverything) {
  const std::vector<double> w{0.4, 0.3, 0.3};
  const auto from = IntervalPartition::from_weights(90, w);
  const auto to = repartition_mcr(from, w);
  EXPECT_EQ(from.moved(to), 0);
}

TEST(Mcr, OutputIsAlwaysAPermutation) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t p = 2 + rng.below(7);
    const auto wa = random_weights(p, rng);
    const auto wb = random_weights(p, rng);
    const auto from = IntervalPartition::from_weights(200, wa);
    const auto arr = minimize_cost_redistribution(from, wb);
    Arrangement sorted = arr;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < p; ++i) EXPECT_EQ(sorted[i], static_cast<Rank>(i));
  }
}

TEST(Mcr, NeverWorseThanKeepingTheArrangement) {
  Rng rng(13);
  const auto obj = ArrangementObjective::overlap_only();
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t p = 2 + rng.below(7);
    const auto wa = random_weights(p, rng);
    const auto wb = random_weights(p, rng);
    const auto n = static_cast<Vertex>(100 + rng.below(900));
    const auto from = IntervalPartition::from_weights(n, wa);
    const auto keep = repartition_same_arrangement(from, wb);
    const auto mcr = repartition_mcr(from, wb, obj);
    EXPECT_GE(from.overlap(mcr), from.overlap(keep)) << "trial " << trial;
  }
}

class McrVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McrVsExhaustive, GreedyDominatesKeepAndIsNearOptimal) {
  // Property test over 100 seeded random weight vectors, p <= 6. The paper
  // claims MCR "produces good suboptimal results"; quantify: (a) never worse
  // than keeping the current arrangement, (b) never better than the
  // exhaustive optimum (that would indicate a scoring bug), and (c) within
  // 60% of the optimal objective (the single-pass greedy occasionally lands
  // ~30% off; the aggregate test below pins the typical gap much tighter).
  Rng rng(GetParam());
  const std::size_t p = 2 + rng.below(5);  // 2..6
  const auto wa = random_weights(p, rng);
  const auto wb = random_weights(p, rng);
  const auto n = static_cast<Vertex>(100 + rng.below(400));
  const auto from = IntervalPartition::from_weights(n, wa);
  const auto obj = ArrangementObjective::overlap_only();

  const auto greedy_arr = minimize_cost_redistribution(from, wb, obj);
  const auto best_arr = exhaustive_best(from, wb, obj);
  const double greedy = score_arrangement(from, wb, greedy_arr, obj);
  const double keep = score_arrangement(from, wb, from.arrangement(), obj);
  const double best = score_arrangement(from, wb, best_arr, obj);
  EXPECT_GE(greedy, keep - 1e-9);
  EXPECT_LE(greedy, best + 1e-9);
  // Scores are negative move counts; slack for tiny instances.
  EXPECT_GE(greedy, 1.6 * best - 5.0) << "greedy " << greedy << " vs best " << best;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, McrVsExhaustive,
                         ::testing::Range<std::uint64_t>(0, 100));

TEST(Mcr, TypicalGapToOptimalIsSmall) {
  // Aggregate over many instances: the greedy moves at most 15% more data
  // than the exhaustive optimum on average.
  Rng rng(123);
  const auto obj = ArrangementObjective::overlap_only();
  double greedy_total = 0.0, best_total = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t p = 4 + rng.below(3);
    const auto wa = random_weights(p, rng);
    const auto wb = random_weights(p, rng);
    const auto from = IntervalPartition::from_weights(400, wa);
    greedy_total -= score_arrangement(
        from, wb, minimize_cost_redistribution(from, wb, obj), obj);
    best_total -= score_arrangement(from, wb, exhaustive_best(from, wb, obj), obj);
  }
  EXPECT_LE(greedy_total, 1.15 * best_total)
      << "greedy moved " << greedy_total << " vs optimal " << best_total;
}

TEST(ExhaustiveBest, RefusesLargeP) {
  const auto from = IntervalPartition::from_weights(100, std::vector<double>(11, 1.0));
  EXPECT_THROW(exhaustive_best(from, std::vector<double>(11, 1.0)),
               std::invalid_argument);
}

TEST(Mcr, WeightCountValidated) {
  const auto from = IntervalPartition::from_weights(10, std::vector<double>{1.0, 1.0});
  EXPECT_THROW(minimize_cost_redistribution(from, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(repartition_same_arrangement(from, std::vector<double>{1.0, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(Mcr, MessageAwareObjectiveReducesMessages) {
  Rng rng(41);
  ArrangementObjective msg_heavy{10.0, 0.01};
  const auto overlap_only = ArrangementObjective::overlap_only();
  int msg_total_heavy = 0, msg_total_overlap = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto wa = random_weights(5, rng);
    const auto wb = random_weights(5, rng);
    const auto from = IntervalPartition::from_weights(500, wa);
    const auto a = repartition_mcr(from, wb, msg_heavy);
    const auto b = repartition_mcr(from, wb, overlap_only);
    msg_total_heavy += redistribution_cost(from, a).messages;
    msg_total_overlap += redistribution_cost(from, b).messages;
  }
  EXPECT_LE(msg_total_heavy, msg_total_overlap);
}

}  // namespace
}  // namespace stance::partition
