// Integration tests for the mp layer: SPMD execution, point-to-point,
// collectives, multicast, virtual-time semantics, determinism, and failure
// injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "mp/cluster.hpp"
#include "mp/errors.hpp"
#include "sim/machine.hpp"

namespace stance::mp {
namespace {

using sim::MachineSpec;

TEST(Cluster, RunsOneBodyPerRank) {
  Cluster cluster(MachineSpec::uniform(4));
  std::atomic<int> count{0};
  std::vector<int> ranks(4, -1);
  cluster.run([&](Process& p) {
    ranks[static_cast<std::size_t>(p.rank())] = p.rank();
    EXPECT_EQ(p.nprocs(), 4);
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(ranks[static_cast<std::size_t>(r)], r);
}

TEST(Cluster, PingPongDeliversPayload) {
  Cluster cluster(MachineSpec::uniform(2));
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      std::vector<double> data{1.0, 2.0, 3.0};
      p.send(1, 7, data);
      const auto echoed = p.recv<double>(1, 8);
      EXPECT_EQ(echoed, (std::vector<double>{3.0, 2.0, 1.0}));
    } else {
      auto data = p.recv<double>(0, 7);
      std::reverse(data.begin(), data.end());
      p.send(0, 8, data);
    }
  });
}

TEST(Cluster, SelfSendRejected) {
  Cluster cluster(MachineSpec::uniform(2));
  EXPECT_THROW(cluster.run([](Process& p) {
                 std::vector<int> v{1};
                 p.send(p.rank(), 0, v);
               }),
               std::invalid_argument);
}

TEST(Cluster, ComputeAdvancesOnlyThatRanksClock) {
  Cluster cluster(MachineSpec::uniform(3));
  cluster.run([](Process& p) {
    if (p.rank() == 1) p.compute(5.0);
  });
  const auto t = cluster.finish_times();
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 5.0);
  EXPECT_DOUBLE_EQ(t[2], 0.0);
  EXPECT_DOUBLE_EQ(cluster.makespan(), 5.0);
}

TEST(Cluster, HeterogeneousSpeedStretchesCompute) {
  MachineSpec spec = MachineSpec::uniform(2);
  spec.nodes[1].speed = 0.5;
  Cluster cluster(spec);
  cluster.run([](Process& p) { p.compute(4.0); });
  const auto t = cluster.finish_times();
  EXPECT_DOUBLE_EQ(t[0], 4.0);
  EXPECT_DOUBLE_EQ(t[1], 8.0);
}

TEST(Cluster, MessageArrivalIncludesLatency) {
  MachineSpec spec = MachineSpec::uniform(2);
  spec.net.latency = 0.1;
  Cluster cluster(spec);
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      p.compute(1.0);  // sender is at t=1 when it sends
      std::vector<int> v{1};
      p.send(1, 0, v);
    } else {
      (void)p.recv<int>(0, 0);
      EXPECT_NEAR(p.now(), 1.1, 1e-9);  // 1.0 + latency (+ payload/bandwidth)
    }
  });
}

TEST(Cluster, RecvWaitsForSenderVirtualTime) {
  // The receiver calls recv at virtual t=0 but the message only "exists"
  // from the sender's send time onward: the receiver's clock must jump.
  MachineSpec spec = MachineSpec::uniform(2);
  Cluster cluster(spec);
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      p.compute(7.0);
      std::vector<int> v{1};
      p.send(1, 0, v);
    } else {
      (void)p.recv<int>(0, 0);
      EXPECT_GE(p.now(), 7.0);
    }
  });
}

TEST(Cluster, BandwidthTermScalesWithMessageSize) {
  MachineSpec spec = MachineSpec::uniform(2);
  spec.net.latency = 0.0;
  spec.net.bandwidth = 1000.0;  // bytes/s
  Cluster cluster(spec);
  std::vector<double> arrival(2);
  cluster.run([&](Process& p) {
    if (p.rank() == 0) {
      std::vector<std::int64_t> v(125);  // 1000 bytes -> 1 second wire time
      p.send(1, 0, v);
    } else {
      (void)p.recv<std::int64_t>(0, 0);
      arrival[1] = p.now();
    }
  });
  EXPECT_NEAR(arrival[1], 1.0, 1e-9);
}

TEST(Cluster, BarrierSynchronizesClocks) {
  Cluster cluster(MachineSpec::uniform(4));
  cluster.run([](Process& p) {
    p.compute(static_cast<double>(p.rank()));  // ranks at 0,1,2,3
    p.barrier();
    EXPECT_DOUBLE_EQ(p.now(), 3.0);  // ideal network: barrier itself is free
  });
}

TEST(Cluster, BcastDeliversRootData) {
  Cluster cluster(MachineSpec::uniform(5));
  cluster.run([](Process& p) {
    std::vector<int> data;
    if (p.rank() == 2) data = {10, 20, 30};
    p.bcast(2, data);
    EXPECT_EQ(data, (std::vector<int>{10, 20, 30}));
  });
}

TEST(Cluster, BcastValueConvenience) {
  Cluster cluster(MachineSpec::uniform(3));
  cluster.run([](Process& p) {
    const double v = p.bcast_value(0, p.rank() == 0 ? 3.25 : -1.0);
    EXPECT_DOUBLE_EQ(v, 3.25);
  });
}

TEST(Cluster, AllgatherCollectsRankValues) {
  Cluster cluster(MachineSpec::uniform(4));
  cluster.run([](Process& p) {
    const auto all = p.allgather(p.rank() * 11);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 11);
  });
}

TEST(Cluster, AllgathervVariableLengths) {
  Cluster cluster(MachineSpec::uniform(3));
  cluster.run([](Process& p) {
    std::vector<int> mine(static_cast<std::size_t>(p.rank()), p.rank());
    const auto all = p.allgatherv(std::span<const int>(mine));
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(r));
      for (const int v : all[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
    }
  });
}

TEST(Cluster, AllreduceSumMaxMin) {
  Cluster cluster(MachineSpec::uniform(4));
  cluster.run([](Process& p) {
    const double x = static_cast<double>(p.rank() + 1);
    EXPECT_DOUBLE_EQ(p.allreduce_sum(x), 10.0);
    EXPECT_DOUBLE_EQ(p.allreduce_max(x), 4.0);
    EXPECT_DOUBLE_EQ(p.allreduce_min(x), 1.0);
  });
}

TEST(Cluster, AllreduceIsDeterministicFold) {
  // The fold is evaluated in rank order on every rank: all ranks observe the
  // exact same floating-point result.
  Cluster cluster(MachineSpec::uniform(6));
  std::vector<double> results(6);
  cluster.run([&](Process& p) {
    const double x = 0.1 * static_cast<double>(p.rank() + 1) + 1e-13;
    results[static_cast<std::size_t>(p.rank())] = p.allreduce_sum(x);
  });
  for (int r = 1; r < 6; ++r) EXPECT_EQ(results[0], results[static_cast<std::size_t>(r)]);
}

TEST(Cluster, AlltoallvRoutesPersonalizedData) {
  Cluster cluster(MachineSpec::uniform(4));
  cluster.run([](Process& p) {
    const auto np = static_cast<std::size_t>(p.nprocs());
    std::vector<std::vector<int>> out(np);
    for (std::size_t d = 0; d < np; ++d) out[d] = {p.rank() * 10 + static_cast<int>(d)};
    const auto in = p.alltoallv(out);
    for (std::size_t s = 0; s < np; ++s) {
      ASSERT_EQ(in[s].size(), 1u);
      EXPECT_EQ(in[s][0], static_cast<int>(s) * 10 + p.rank());
    }
  });
}

TEST(Cluster, ExchangeKnownSparsePattern) {
  // Ring exchange: each rank sends only to (rank+1) % p.
  Cluster cluster(MachineSpec::uniform(4));
  cluster.run([](Process& p) {
    const int next = (p.rank() + 1) % 4;
    const int prev = (p.rank() + 3) % 4;
    const std::vector<Rank> dests{next};
    const std::vector<std::vector<int>> out{{p.rank()}};
    const std::vector<Rank> sources{prev};
    const auto in = p.exchange_known(std::span<const Rank>(dests), out,
                                     std::span<const Rank>(sources));
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(in[0][0], prev);
  });
}

TEST(Cluster, MulticastDeliversToAllDests) {
  Cluster cluster(MachineSpec::uniform_ethernet(4, /*multicast=*/true));
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      const std::vector<Rank> dests{1, 2, 3};
      const std::vector<int> data{5, 6};
      p.multicast(dests, 3, data);
      EXPECT_EQ(p.stats().multicasts, 1u);
      EXPECT_EQ(p.stats().messages_sent, 1u);  // one transmission
    } else {
      EXPECT_EQ(p.recv<int>(0, 3), (std::vector<int>{5, 6}));
    }
  });
}

TEST(Cluster, MulticastFallsBackToUnicastLoop) {
  Cluster cluster(MachineSpec::uniform_ethernet(4, /*multicast=*/false));
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      const std::vector<Rank> dests{1, 2, 3};
      const std::vector<int> data{9};
      p.multicast(dests, 3, data);
      EXPECT_EQ(p.stats().multicasts, 0u);
      EXPECT_EQ(p.stats().messages_sent, 3u);
    } else {
      EXPECT_EQ(p.recv<int>(0, 3)[0], 9);
    }
  });
}

TEST(Cluster, MulticastArrivalIsSimultaneous) {
  MachineSpec spec = MachineSpec::uniform(3);
  spec.net.latency = 0.5;
  spec.net.multicast = true;
  Cluster cluster(spec);
  std::vector<double> arrivals(3, -1.0);
  cluster.run([&](Process& p) {
    if (p.rank() == 0) {
      const std::vector<Rank> dests{1, 2};
      const std::vector<int> data{1};
      p.multicast(dests, 0, data);
    } else {
      (void)p.recv<int>(0, 0);
      arrivals[static_cast<std::size_t>(p.rank())] = p.now();
    }
  });
  EXPECT_DOUBLE_EQ(arrivals[1], arrivals[2]);
}

TEST(Cluster, DefaultNodeMapIsOneRankPerNode) {
  Cluster cluster(MachineSpec::uniform(3));
  EXPECT_TRUE(cluster.node_map().trivial());
  EXPECT_EQ(cluster.node_map().nnodes(), 3);
}

TEST(Cluster, StatsSplitIntraAndInterNodeTraffic) {
  // Ranks 0,1 share node 0; rank 2 is alone on node 1. One message along
  // each kind of edge.
  Cluster cluster(MachineSpec::uniform(3), NodeMap::contiguous(3, 2));
  cluster.run([](Process& p) {
    std::vector<int> v{p.rank()};
    if (p.rank() == 0) {
      p.send(1, 1, v);  // intra-node
      p.send(2, 2, v);  // inter-node
    } else if (p.rank() == 1) {
      (void)p.recv<int>(0, 1);
    } else {
      (void)p.recv<int>(0, 2);
    }
  });
  const auto total = cluster.total_stats();
  EXPECT_EQ(total.messages_sent, 2u);
  EXPECT_EQ(total.intra_node_sent, 1u);
  EXPECT_EQ(total.inter_node_sent, 1u);
  EXPECT_EQ(total.intra_node_bytes_sent, sizeof(int));
  EXPECT_EQ(total.inter_node_bytes_sent, sizeof(int));
}

TEST(Cluster, IntraNodeMessagesBypassTheWireCostModel) {
  MachineSpec spec = MachineSpec::uniform(3);
  spec.net.latency = 0.1;           // wire: 100 ms per message
  spec.net.intra_latency = 1.0e-6;  // shared memory: 1 µs handoff
  Cluster cluster(spec, NodeMap::contiguous(3, 2));
  std::vector<double> arrival(3, 0.0);
  cluster.run([&](Process& p) {
    std::vector<int> v{1};
    if (p.rank() == 0) {
      p.send(1, 1, v);
      p.send(2, 2, v);
    } else {
      (void)p.recv<int>(0, p.rank());
      arrival[static_cast<std::size_t>(p.rank())] = p.now();
    }
  });
  EXPECT_NEAR(arrival[1], 1.0e-6, 1e-9);  // co-resident: microseconds
  EXPECT_NEAR(arrival[2], 0.1, 1e-9);      // off-node: wire latency
}

TEST(Cluster, StatsCountMessagesAndBytes) {
  Cluster cluster(MachineSpec::uniform(2));
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      std::vector<double> v(10);
      p.send(1, 0, v);
    } else {
      (void)p.recv<double>(0, 0);
    }
  });
  const auto total = cluster.total_stats();
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.messages_recv, 1u);
  EXPECT_EQ(total.bytes_sent, 10 * sizeof(double));
  EXPECT_EQ(total.bytes_recv, 10 * sizeof(double));
}

TEST(Cluster, ClocksPersistAcrossRunsAndReset) {
  Cluster cluster(MachineSpec::uniform(2));
  cluster.run([](Process& p) { p.compute(2.0); });
  cluster.run([](Process& p) { p.compute(3.0); });
  EXPECT_DOUBLE_EQ(cluster.makespan(), 5.0);
  cluster.reset_clocks();
  EXPECT_DOUBLE_EQ(cluster.makespan(), 0.0);
}

TEST(Cluster, SetProfileSlowsANode) {
  Cluster cluster(MachineSpec::uniform(2));
  cluster.set_profile(0, sim::LoadProfile::competing_jobs(1));
  cluster.run([](Process& p) { p.compute(2.0); });
  const auto t = cluster.finish_times();
  EXPECT_DOUBLE_EQ(t[0], 4.0);
  EXPECT_DOUBLE_EQ(t[1], 2.0);
}

TEST(Cluster, DeterministicVirtualTimesAcrossRepeats) {
  // The same program yields bit-identical clocks on every execution, even
  // though host thread scheduling varies.
  auto run_once = [] {
    Cluster cluster(MachineSpec::uniform_ethernet(4));
    cluster.run([](Process& p) {
      for (int i = 0; i < 10; ++i) {
        const auto all = p.allgather(p.rank() + i);
        p.compute(0.001 * static_cast<double>(all[0] + 1));
        if (p.rank() > 0) {
          std::vector<int> v{i};
          p.send(0, 1, v);
        } else {
          for (int r = 1; r < 4; ++r) (void)p.recv<int>(r, 1);
        }
      }
    });
    return cluster.finish_times();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Cluster, ExceptionInOneRankPropagatesAndReleasesOthers) {
  Cluster cluster(MachineSpec::uniform(3));
  EXPECT_THROW(cluster.run([](Process& p) {
                 if (p.rank() == 0) throw std::runtime_error("rank0 failed");
                 // Other ranks block forever; shutdown must release them.
                 (void)p.recv<int>(0, 99);
               }),
               std::runtime_error);
}

TEST(Cluster, ClusterUsableAfterFailure) {
  Cluster cluster(MachineSpec::uniform(2));
  EXPECT_THROW(cluster.run([](Process& p) {
                 if (p.rank() == 1) throw std::logic_error("boom");
                 (void)p.recv<int>(1, 0);
               }),
               std::logic_error);
  cluster.reset_clocks();
  // A fresh run on the same cluster must work.
  cluster.run([](Process& p) {
    const auto all = p.allgather(p.rank());
    EXPECT_EQ(all.size(), 2u);
  });
}

TEST(Cluster, LeftoverMessageIsAnError) {
  Cluster cluster(MachineSpec::uniform(2));
  // Rank 0 sends a message nobody receives: the run must die loudly
  // (STANCE_ASSERT aborts), so we only document the contract here by
  // checking the mailbox bookkeeping instead of triggering the abort.
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> v{1};
      p.send(1, 5, v);
    } else {
      (void)p.recv<int>(0, 5);
    }
  });
  SUCCEED();
}

TEST(Cluster, CommSecondsAccountedOnReceiver) {
  MachineSpec spec = MachineSpec::uniform(2);
  spec.net.latency = 0.25;
  Cluster cluster(spec);
  cluster.run([](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> v{1};
      p.send(1, 0, v);
    } else {
      (void)p.recv<int>(0, 0);
      EXPECT_NEAR(p.stats().comm_seconds, 0.25, 1e-9);
    }
  });
}

// --- strict STANCE_*_MS parsing ---------------------------------------------

/// Scoped override of one environment variable, restored on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ClusterEnv, MalformedRunDeadlineFailsLoudly) {
  // The old strtol parsing turned "banana" into 0 == watchdog silently off.
  Cluster cluster(MachineSpec::uniform(2));
  ScopedEnv env("STANCE_RUN_DEADLINE_MS", "banana");
  EXPECT_THROW(cluster.run([](Process&) {}), std::invalid_argument);
}

TEST(ClusterEnv, WellFormedRunDeadlineStillRuns) {
  Cluster cluster(MachineSpec::uniform(2));
  ScopedEnv env("STANCE_RUN_DEADLINE_MS", "60000");
  std::atomic<int> count{0};
  cluster.run([&](Process&) { ++count; });
  EXPECT_EQ(count.load(), 2);
}

TEST(ClusterEnv, MalformedPeerTimeoutRejectedAtConstruction) {
  // The timeout is read when the transport is built; "5s" must not silently
  // truncate to 5 ms (the unit-dropping variant of the same bug).
  ScopedEnv env("STANCE_PEER_TIMEOUT_MS", "5s");
  EXPECT_THROW(Cluster cluster(MachineSpec::uniform(2)), std::invalid_argument);
}

}  // namespace
}  // namespace stance::mp
