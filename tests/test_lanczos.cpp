// Unit tests for the tridiagonal eigensolver and the deflated Lanczos
// Fiedler solver.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/builders.hpp"
#include "order/lanczos.hpp"

namespace stance::order {
namespace {

TEST(Tql2, DiagonalMatrixIsItsOwnDecomposition) {
  std::vector<double> d{3.0, 1.0, 2.0};
  std::vector<double> e{0.0, 0.0};
  std::vector<double> z;
  tql2(d, e, z);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(Tql2, TwoByTwoKnownEigenvalues) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  std::vector<double> d{2.0, 2.0};
  std::vector<double> e{1.0};
  std::vector<double> z;
  tql2(d, e, z);
  EXPECT_NEAR(d[0], 1.0, 1e-12);
  EXPECT_NEAR(d[1], 3.0, 1e-12);
  // Eigenvector of eigenvalue 1 is (1, -1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(z[0 * 2 + 0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(z[0 * 2 + 0] * z[1 * 2 + 0], -0.5, 1e-12);
}

TEST(Tql2, PathLaplacianEigenvalues) {
  // Laplacian of the path graph P_n (tridiagonal): eigenvalues are
  // 2 - 2 cos(pi k / n), k = 0..n-1.
  constexpr std::size_t n = 8;
  std::vector<double> d(n, 2.0);
  d.front() = d.back() = 1.0;
  std::vector<double> e(n - 1, -1.0);
  std::vector<double> z;
  tql2(d, e, z);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) / static_cast<double>(n));
    EXPECT_NEAR(d[k], expected, 1e-10) << "k=" << k;
  }
}

TEST(Tql2, EigenpairsSatisfyDefinition) {
  // Random symmetric tridiagonal: check T v = lambda v for every pair.
  std::vector<double> diag{1.5, -0.3, 2.2, 0.9, 3.1};
  std::vector<double> off{0.7, -1.1, 0.4, 0.2};
  std::vector<double> d = diag, e = off, z;
  tql2(d, e, z);
  const std::size_t n = diag.size();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double tv = diag[i] * z[i * n + j];
      if (i > 0) tv += off[i - 1] * z[(i - 1) * n + j];
      if (i + 1 < n) tv += off[i] * z[(i + 1) * n + j];
      EXPECT_NEAR(tv, d[j] * z[i * n + j], 1e-10) << "i=" << i << " j=" << j;
    }
  }
  // Eigenvalues ascending.
  for (std::size_t j = 1; j < n; ++j) EXPECT_LE(d[j - 1], d[j] + 1e-14);
}

/// Laplacian apply for a Csr graph.
auto laplacian_of(const graph::Csr& g) {
  return [&g](const double* x, double* y) {
    const auto n = static_cast<std::size_t>(g.num_vertices());
    for (std::size_t i = 0; i < n; ++i) {
      const auto nb = g.neighbors(static_cast<graph::Vertex>(i));
      double acc = static_cast<double>(nb.size()) * x[i];
      for (const auto j : nb) acc -= x[static_cast<std::size_t>(j)];
      y[i] = acc;
    }
  };
}

TEST(Lanczos, PathGraphFiedlerIsMonotone) {
  // The Fiedler vector of a path graph is a sampled cosine — strictly
  // monotone along the path.
  const auto g = graph::grid_2d(24, 1);
  const auto f = smallest_eigvec_deflated(24, laplacian_of(g), {});
  const double sign = f[1] > f[0] ? 1.0 : -1.0;
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GT(sign * (f[i] - f[i - 1]), 0.0) << "i=" << i;
  }
}

TEST(Lanczos, FiedlerSeparatesDumbbell) {
  // Two cliques joined by one edge: the Fiedler vector has one sign per
  // clique.
  std::vector<graph::Edge> edges;
  for (graph::Vertex i = 0; i < 6; ++i) {
    for (graph::Vertex j = i + 1; j < 6; ++j) {
      edges.push_back({i, j});
      edges.push_back({static_cast<graph::Vertex>(i + 6),
                       static_cast<graph::Vertex>(j + 6)});
    }
  }
  edges.push_back({5, 6});
  const auto g = graph::Csr::from_edges(12, edges);
  const auto f = smallest_eigvec_deflated(12, laplacian_of(g), {});
  for (int i = 0; i < 6; ++i) {
    EXPECT_LT(f[static_cast<std::size_t>(i)] * f[static_cast<std::size_t>(i + 6)], 0.0);
  }
}

TEST(Lanczos, RayleighQuotientNearLambda2OnGrid) {
  // For the nx-by-ny grid Laplacian, lambda_2 = 2 - 2 cos(pi / max(nx, ny)).
  constexpr int nx = 16, ny = 12;
  const auto g = graph::grid_2d(nx, ny);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto f = smallest_eigvec_deflated(n, laplacian_of(g), {});
  std::vector<double> lf(n);
  laplacian_of(g)(f.data(), lf.data());
  double rayleigh = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rayleigh += f[i] * lf[i];
    norm += f[i] * f[i];
  }
  rayleigh /= norm;
  const double lambda2 = 2.0 - 2.0 * std::cos(M_PI / nx);
  EXPECT_NEAR(rayleigh, lambda2, 0.02 * lambda2);
}

TEST(Lanczos, DeterministicForSeed) {
  const auto g = graph::random_delaunay(300, 9);
  const auto a = smallest_eigvec_deflated(300, laplacian_of(g), {});
  const auto b = smallest_eigvec_deflated(300, laplacian_of(g), {});
  EXPECT_EQ(a, b);
}

TEST(Lanczos, ResultIsDeflatedAndNormalized) {
  const auto g = graph::random_delaunay(200, 4);
  const auto f = smallest_eigvec_deflated(200, laplacian_of(g), {});
  double mean = 0.0, norm = 0.0;
  for (const double x : f) {
    mean += x;
    norm += x * x;
  }
  EXPECT_NEAR(mean / 200.0, 0.0, 1e-9);
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Lanczos, RejectsTrivialProblems) {
  EXPECT_THROW(smallest_eigvec_deflated(1, [](const double*, double*) {}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace stance::order
