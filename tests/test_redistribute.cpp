// Tests for executing redistribution plans on the cluster.
#include <gtest/gtest.h>

#include "mp/cluster.hpp"
#include "partition/mcr.hpp"
#include "partition/redistribute.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace stance::partition {
namespace {

/// Fill each rank's local slice with f(global index); redistribute; verify
/// every element landed where the target partition says it should.
void check_roundtrip(std::size_t nprocs, const IntervalPartition& from,
                     const IntervalPartition& to) {
  mp::Cluster cluster(sim::MachineSpec::uniform(nprocs));
  auto value_of = [](Vertex g) { return 1000.0 + static_cast<double>(g) * 0.5; };
  cluster.run([&](mp::Process& p) {
    const auto me = p.rank();
    std::vector<double> local(static_cast<std::size_t>(from.size(me)));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = value_of(from.to_global(me, static_cast<Vertex>(i)));
    }
    const auto next = redistribute<double>(p, local, from, to);
    ASSERT_EQ(next.size(), static_cast<std::size_t>(to.size(me)));
    for (std::size_t i = 0; i < next.size(); ++i) {
      EXPECT_DOUBLE_EQ(next[i], value_of(to.to_global(me, static_cast<Vertex>(i))));
    }
  });
}

TEST(Redistribute, NoOpWhenPartitionsMatch) {
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{7, 3});
  check_roundtrip(2, part, part);
}

TEST(Redistribute, SimpleShift) {
  const auto from = IntervalPartition::from_sizes(std::vector<Vertex>{6, 4});
  const auto to = IntervalPartition::from_sizes(std::vector<Vertex>{4, 6});
  check_roundtrip(2, from, to);
}

TEST(Redistribute, PaperFigure5BothArrangements) {
  const std::vector<double> old_w{0.27, 0.18, 0.34, 0.07, 0.14};
  const std::vector<double> new_w{0.10, 0.13, 0.29, 0.24, 0.24};
  const auto from = IntervalPartition::from_weights(100, old_w);
  check_roundtrip(5, from, IntervalPartition::from_weights(100, new_w));
  check_roundtrip(5, from, IntervalPartition::from_weights_arranged(
                               100, new_w, Arrangement{0, 3, 1, 2, 4}));
}

TEST(Redistribute, EmptySourceBlock) {
  const auto from = IntervalPartition::from_sizes(std::vector<Vertex>{0, 10});
  const auto to = IntervalPartition::from_sizes(std::vector<Vertex>{5, 5});
  check_roundtrip(2, from, to);
}

TEST(Redistribute, EmptyTargetBlock) {
  const auto from = IntervalPartition::from_sizes(std::vector<Vertex>{5, 5});
  const auto to = IntervalPartition::from_sizes(std::vector<Vertex>{10, 0});
  check_roundtrip(2, from, to);
}

TEST(Redistribute, CompleteReversalOfArrangement) {
  const auto from = IntervalPartition::from_sizes(std::vector<Vertex>{3, 3, 4});
  const auto to = IntervalPartition::from_sizes_arranged(std::vector<Vertex>{3, 3, 4},
                                                         Arrangement{2, 1, 0});
  check_roundtrip(3, from, to);
}

class RedistributeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RedistributeRandom, RandomWeightPairs) {
  Rng rng(GetParam());
  const std::size_t p = 2 + rng.below(5);
  const auto wb = random_weights(p, rng);
  const auto n = static_cast<Vertex>(50 + rng.below(300));
  const auto from = test::random_partition(n, p, rng);
  // Alternate between MCR-arranged and same-arranged targets.
  const auto to = (GetParam() % 2 == 0) ? repartition_mcr(from, wb)
                                        : repartition_same_arrangement(from, wb);
  check_roundtrip(p, from, to);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistributeRandom, ::testing::Range<std::uint64_t>(0, 20));

TEST(Redistribute, MessageCountMatchesPlan) {
  const std::vector<double> old_w{0.27, 0.18, 0.34, 0.07, 0.14};
  const std::vector<double> new_w{0.10, 0.13, 0.29, 0.24, 0.24};
  const auto from = IntervalPartition::from_weights(100, old_w);
  const auto to = IntervalPartition::from_weights(100, new_w);
  mp::Cluster cluster(sim::MachineSpec::uniform(5));
  cluster.run([&](mp::Process& p) {
    std::vector<double> local(static_cast<std::size_t>(from.size(p.rank())), 1.0);
    (void)redistribute<double>(p, local, from, to);
  });
  EXPECT_EQ(cluster.total_stats().messages_sent, 6u);  // exact plan: 6 messages
}

TEST(Redistribute, McrArrangementMovesFewerBytes) {
  const std::vector<double> old_w{0.27, 0.18, 0.34, 0.07, 0.14};
  const std::vector<double> new_w{0.10, 0.13, 0.29, 0.24, 0.24};
  const auto from = IntervalPartition::from_weights(100, old_w);
  auto run = [&](const IntervalPartition& to) {
    mp::Cluster cluster(sim::MachineSpec::uniform(5));
    cluster.run([&](mp::Process& p) {
      std::vector<double> local(static_cast<std::size_t>(from.size(p.rank())), 1.0);
      (void)redistribute<double>(p, local, from, to);
    });
    return cluster.total_stats().bytes_sent;
  };
  const auto without = run(repartition_same_arrangement(from, new_w));
  const auto with = run(repartition_mcr(from, new_w));
  EXPECT_EQ(without, 69u * sizeof(double));
  EXPECT_LE(with, 36u * sizeof(double));
  EXPECT_LT(with, without);
}

TEST(Redistribute, WrongLocalSizeRejected) {
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{5, 5});
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  EXPECT_THROW(cluster.run([&](mp::Process& p) {
                 std::vector<double> local(3);  // wrong size on every rank
                 (void)redistribute<double>(p, local, part, part);
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace stance::partition
