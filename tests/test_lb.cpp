// Tests for Phase D: load monitor, controller decision logic, the SPMD
// check protocol, and the full adaptive executor.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "lb/adaptive_executor.hpp"
#include "lb/controller.hpp"
#include "lb/load_monitor.hpp"
#include "mp/cluster.hpp"
#include "sim/machine.hpp"

namespace stance::lb {
namespace {

using partition::IntervalPartition;

// --- LoadMonitor --------------------------------------------------------------

TEST(LoadMonitor, TimePerItem) {
  LoadMonitor m;
  m.record(2.0, 100);
  EXPECT_DOUBLE_EQ(m.time_per_item(), 0.02);
  EXPECT_DOUBLE_EQ(m.capability(), 50.0);
  m.record(2.0, 300);
  EXPECT_DOUBLE_EQ(m.time_per_item(), 0.01);
  EXPECT_EQ(m.phases(), 2);
}

TEST(LoadMonitor, EmptyIsZero) {
  LoadMonitor m;
  EXPECT_DOUBLE_EQ(m.time_per_item(), 0.0);
  EXPECT_DOUBLE_EQ(m.capability(), 0.0);
}

TEST(LoadMonitor, ResetClearsWindow) {
  LoadMonitor m;
  m.record(5.0, 10);
  m.reset();
  EXPECT_DOUBLE_EQ(m.time_per_item(), 0.0);
  EXPECT_EQ(m.items_processed(), 0);
}

TEST(LoadMonitor, RejectsNegative) {
  LoadMonitor m;
  EXPECT_THROW(m.record(-1.0, 5), std::invalid_argument);
  EXPECT_THROW(m.record(1.0, -5), std::invalid_argument);
}

// --- decide() ------------------------------------------------------------------

LbOptions cheap_remap_options() {
  LbOptions o;
  o.check_interval = 10;
  o.objective = partition::ArrangementObjective::overlap_only();
  // overlap_only objective gives per-element cost 1s — make remap cheap so
  // profitability hinges on the predicted gain.
  o.objective.per_element = 1e-6;
  o.rebuild_cost_estimate = 0.0;
  return o;
}

TEST(Decide, BalancedLoadNoRemap) {
  const auto part = IntervalPartition::from_weights(100, std::vector<double>{1, 1});
  const std::vector<double> tpi{0.01, 0.01};
  const auto d = decide(part, tpi, cheap_remap_options());
  EXPECT_FALSE(d.remap);
}

TEST(Decide, SkewedLoadTriggersRemap) {
  // Equal decomposition but processor 0 is 3x slower (the paper's adaptive
  // experiment after the competing load arrives).
  const auto part = IntervalPartition::from_weights(1000, std::vector<double>{1, 1});
  const std::vector<double> tpi{0.03, 0.01};
  const auto d = decide(part, tpi, cheap_remap_options());
  ASSERT_TRUE(d.remap);
  // Capability-proportional: proc 0 gets ~1/4, proc 1 ~3/4.
  EXPECT_EQ(d.new_partition.size(0), 250);
  EXPECT_EQ(d.new_partition.size(1), 750);
  EXPECT_LT(d.predicted_new, d.predicted_current);
}

TEST(Decide, ExpensiveRemapRejected) {
  const auto part = IntervalPartition::from_weights(1000, std::vector<double>{1, 1});
  const std::vector<double> tpi{0.03, 0.01};
  auto opts = cheap_remap_options();
  opts.rebuild_cost_estimate = 1e9;  // remap can never pay off
  const auto d = decide(part, tpi, opts);
  EXPECT_FALSE(d.remap);
  EXPECT_GT(d.remap_cost, 1e8);
}

TEST(Decide, ProfitabilityFactorScalesThreshold) {
  const auto part = IntervalPartition::from_weights(1000, std::vector<double>{1, 1});
  const std::vector<double> tpi{0.012, 0.01};  // mild skew
  auto opts = cheap_remap_options();
  opts.objective.per_element = 1e-4;
  opts.profitability_factor = 1.0;
  const bool base = decide(part, tpi, opts).remap;
  opts.profitability_factor = 1e6;
  EXPECT_FALSE(decide(part, tpi, opts).remap);
  (void)base;  // base may be either way; the strict factor must refuse
}

TEST(Decide, UnknownLoadsFallBackToMean) {
  const auto part = IntervalPartition::from_weights(900, std::vector<double>{1, 1, 1});
  const std::vector<double> tpi{0.03, 0.0, 0.01};  // middle rank had no items
  const auto d = decide(part, tpi, cheap_remap_options());
  ASSERT_TRUE(d.remap);
  // Middle rank treated as tpi = 0.02: capabilities 1/3 : 1/2 : 1.
  EXPECT_GT(d.new_partition.size(2), d.new_partition.size(1));
  EXPECT_GT(d.new_partition.size(1), d.new_partition.size(0));
}

TEST(Decide, AllUnknownKeepsPartition) {
  const auto part = IntervalPartition::from_weights(100, std::vector<double>{1, 1});
  const std::vector<double> tpi{0.0, 0.0};
  EXPECT_FALSE(decide(part, tpi, cheap_remap_options()).remap);
}

TEST(Decide, WithoutMcrKeepsArrangement) {
  const auto part = IntervalPartition::from_weights_arranged(
      600, std::vector<double>{1, 1, 1}, partition::Arrangement{2, 0, 1});
  const std::vector<double> tpi{0.04, 0.01, 0.01};
  auto opts = cheap_remap_options();
  opts.use_mcr = false;
  const auto d = decide(part, tpi, opts);
  ASSERT_TRUE(d.remap);
  EXPECT_EQ(d.new_partition.arrangement(), part.arrangement());
}

TEST(Decide, MeasurementCountValidated) {
  const auto part = IntervalPartition::from_weights(100, std::vector<double>{1, 1});
  const std::vector<double> tpi{0.01};
  EXPECT_THROW((void)decide(part, tpi, cheap_remap_options()), std::invalid_argument);
}

// --- SPMD check protocol --------------------------------------------------------

TEST(LoadBalanceCheck, AllRanksGetTheSameDecision) {
  const auto part = IntervalPartition::from_weights(1200, std::vector<double>{1, 1, 1});
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  std::vector<LbDecision> decisions(3);
  cluster.run([&](mp::Process& p) {
    const double tpi = p.rank() == 0 ? 0.03 : 0.01;  // rank 0 is loaded
    decisions[static_cast<std::size_t>(p.rank())] =
        load_balance_check(p, part, tpi, cheap_remap_options());
  });
  ASSERT_TRUE(decisions[0].remap);
  for (int r = 1; r < 3; ++r) {
    EXPECT_EQ(decisions[0].remap, decisions[static_cast<std::size_t>(r)].remap);
    EXPECT_TRUE(decisions[0].new_partition ==
                decisions[static_cast<std::size_t>(r)].new_partition);
    EXPECT_DOUBLE_EQ(decisions[0].remap_cost,
                     decisions[static_cast<std::size_t>(r)].remap_cost);
  }
}

TEST(LoadBalanceCheck, NonzeroControllerRank) {
  const auto part = IntervalPartition::from_weights(400, std::vector<double>{1, 1});
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  auto opts = cheap_remap_options();
  opts.controller = 1;
  std::vector<LbDecision> decisions(2);
  cluster.run([&](mp::Process& p) {
    decisions[static_cast<std::size_t>(p.rank())] =
        load_balance_check(p, part, p.rank() == 0 ? 0.05 : 0.01, opts);
  });
  EXPECT_EQ(decisions[0].remap, decisions[1].remap);
}

TEST(LoadBalanceCheck, MulticastBroadcastWorks) {
  const auto part = IntervalPartition::from_weights(400, std::vector<double>(4, 1.0));
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4, /*multicast=*/true));
  auto opts = cheap_remap_options();
  opts.use_multicast = true;
  std::vector<LbDecision> decisions(4);
  cluster.run([&](mp::Process& p) {
    decisions[static_cast<std::size_t>(p.rank())] =
        load_balance_check(p, part, 0.01 * (1 + p.rank()), opts);
  });
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(decisions[0].remap, decisions[static_cast<std::size_t>(r)].remap);
  }
  // Controller sent p-1 load... received p-1 loads and ONE multicast.
  EXPECT_EQ(cluster.last_stats()[0].multicasts, 1u);
}

TEST(LoadBalanceCheck, CheckCostIsSmall) {
  // The paper's Table 5: the check is an order of magnitude cheaper than a
  // remap. Here: the check is latency-bound, well under 50 ms on Ethernet.
  const auto part = IntervalPartition::from_weights(1000, std::vector<double>(5, 1.0));
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(5));
  cluster.run([&](mp::Process& p) {
    (void)load_balance_check(p, part, 0.01, cheap_remap_options());
  });
  EXPECT_LT(cluster.makespan(), 0.05);
  EXPECT_GT(cluster.makespan(), 0.0);
}

// --- AdaptiveExecutor ------------------------------------------------------------

AdaptiveOptions adaptive_opts(bool enable_lb) {
  AdaptiveOptions o;
  o.lb = cheap_remap_options();
  o.lb.objective =
      partition::ArrangementObjective::from_network(sim::NetworkModel::ethernet_10mbps(),
                                                    sizeof(double));
  o.cpu = sim::CpuCostModel::sun4();
  o.loop = exec::LoopCostModel{2e-6, 2e-6};
  o.enable_lb = enable_lb;
  return o;
}

TEST(AdaptiveExecutor, NoLoadMeansNoRemap) {
  const auto g = graph::random_delaunay(800, 5);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1, 1});
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(3));
  std::vector<AdaptiveReport> reports(3);
  cluster.run([&](mp::Process& p) {
    AdaptiveExecutor ax(p, g, part, adaptive_opts(true));
    std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())), 1.0);
    reports[static_cast<std::size_t>(p.rank())] = ax.run(p, y, 50);
  });
  EXPECT_EQ(reports[0].remaps, 0);
  EXPECT_GT(reports[0].checks, 0);
  EXPECT_EQ(reports[0].iterations, 50);
}

TEST(AdaptiveExecutor, CompetingLoadTriggersRemapAndHelps) {
  const auto g = graph::random_delaunay(3000, 7);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1, 1});

  auto run = [&](bool enable_lb) {
    mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(3));
    cluster.set_profile(0, sim::LoadProfile::competing_jobs(2));  // 1/3 speed
    std::vector<AdaptiveReport> reports(3);
    cluster.run([&](mp::Process& p) {
      AdaptiveExecutor ax(p, g, part, adaptive_opts(enable_lb));
      std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())), 1.0);
      reports[static_cast<std::size_t>(p.rank())] = ax.run(p, y, 100);
    });
    return std::make_pair(cluster.makespan(), reports[0]);
  };

  const auto [t_without, rep_without] = run(false);
  const auto [t_with, rep_with] = run(true);
  EXPECT_EQ(rep_without.remaps, 0);
  EXPECT_GE(rep_with.remaps, 1);
  EXPECT_LT(t_with, t_without);  // load balancing must pay off
  // With a 3x slowdown on 1/3 of the data, LB should recover a large chunk.
  EXPECT_LT(t_with, 0.75 * t_without);
}

TEST(AdaptiveExecutor, RemapPreservesValuesExactly) {
  // After remaps, the final y must still equal the sequential reference.
  const auto g = graph::random_delaunay(600, 11);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1});
  constexpr int kIters = 40;
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(2));
  cluster.set_profile(1, sim::LoadProfile::competing_jobs(3));
  std::vector<std::vector<double>> finals(2);
  std::vector<IntervalPartition> final_parts(2);
  std::vector<AdaptiveReport> reports(2);
  cluster.run([&](mp::Process& p) {
    AdaptiveExecutor ax(p, g, part, adaptive_opts(true));
    std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())));
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = 1.0 + static_cast<double>(
                       ax.partition().to_global(p.rank(), static_cast<graph::Vertex>(i)) %
                       7);
    }
    reports[static_cast<std::size_t>(p.rank())] = ax.run(p, y, kIters);
    finals[static_cast<std::size_t>(p.rank())] = std::move(y);
    final_parts[static_cast<std::size_t>(p.rank())] = ax.partition();
  });
  ASSERT_GE(reports[0].remaps, 1) << "test needs at least one remap to be meaningful";
  EXPECT_TRUE(final_parts[0] == final_parts[1]);

  std::vector<double> reference(static_cast<std::size_t>(g.num_vertices()));
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    reference[static_cast<std::size_t>(v)] = 1.0 + static_cast<double>(v % 7);
  }
  exec::IrregularLoop::reference_iterate(g, reference, kIters);
  for (int r = 0; r < 2; ++r) {
    const auto& fp = final_parts[static_cast<std::size_t>(r)];
    for (graph::Vertex i = 0; i < fp.size(r); ++i) {
      EXPECT_EQ(finals[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                reference[static_cast<std::size_t>(fp.to_global(r, i))]);
    }
  }
}

TEST(AdaptiveExecutor, ReportAccountsTime) {
  const auto g = graph::random_delaunay(500, 3);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1});
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(2));
  std::vector<AdaptiveReport> reports(2);
  cluster.run([&](mp::Process& p) {
    AdaptiveExecutor ax(p, g, part, adaptive_opts(true));
    std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())), 1.0);
    reports[static_cast<std::size_t>(p.rank())] = ax.run(p, y, 30);
  });
  EXPECT_GT(reports[0].total_seconds, 0.0);
  EXPECT_GT(reports[0].first_build_seconds, 0.0);
  EXPECT_GE(reports[0].total_seconds,
            reports[0].check_seconds + reports[0].remap_seconds);
}

TEST(AdaptiveExecutor, ValidatesInputs) {
  const auto g = graph::random_delaunay(200, 1);
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  // Partition with wrong processor count.
  const auto bad = IntervalPartition::from_weights(g.num_vertices(),
                                                   std::vector<double>{1, 1, 1});
  EXPECT_THROW(cluster.run([&](mp::Process& p) {
                 AdaptiveExecutor ax(p, g, bad, adaptive_opts(true));
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace stance::lb
