// From-scratch equivalence oracle for the incremental schedule rebuild:
// after any interval remap, the patched schedule and localized graph must
// be byte-identical to what the full inspector produces on the new
// partition (the canonical layout makes the comparison exact).
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "partition/mcr.hpp"
#include "sched/incremental.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace stance::sched {
namespace {

using graph::Csr;
using partition::IntervalPartition;
using test::build_all_schedules;

std::vector<InspectorResult> rebuild_all(const Csr& g, const IntervalPartition& from,
                                         const IntervalPartition& to,
                                         const std::vector<InspectorResult>& old) {
  mp::Cluster cluster(
      sim::MachineSpec::uniform(static_cast<std::size_t>(from.nparts())));
  std::vector<InspectorResult> out(static_cast<std::size_t>(from.nparts()));
  cluster.run([&](mp::Process& p) {
    out[static_cast<std::size_t>(p.rank())] = rebuild_incremental(
        p, g, from, to, old[static_cast<std::size_t>(p.rank())],
        sim::CpuCostModel::free());
  });
  return out;
}

void expect_identical(const InspectorResult& patched, const InspectorResult& scratch,
                      int rank) {
  const CommSchedule& a = patched.schedule;
  const CommSchedule& b = scratch.schedule;
  EXPECT_EQ(a.nlocal, b.nlocal) << "rank " << rank;
  EXPECT_EQ(a.nghost, b.nghost) << "rank " << rank;
  EXPECT_EQ(a.send_procs, b.send_procs) << "rank " << rank;
  EXPECT_EQ(a.send_items, b.send_items) << "rank " << rank;
  EXPECT_EQ(a.recv_procs, b.recv_procs) << "rank " << rank;
  EXPECT_EQ(a.recv_slots, b.recv_slots) << "rank " << rank;
  EXPECT_EQ(a.ghost_globals, b.ghost_globals) << "rank " << rank;
  EXPECT_EQ(patched.lgraph.nlocal, scratch.lgraph.nlocal) << "rank " << rank;
  EXPECT_EQ(patched.lgraph.nghost, scratch.lgraph.nghost) << "rank " << rank;
  EXPECT_EQ(patched.lgraph.offsets, scratch.lgraph.offsets) << "rank " << rank;
  EXPECT_EQ(patched.lgraph.refs, scratch.lgraph.refs) << "rank " << rank;
}

void check_remap(const Csr& g, const IntervalPartition& from,
                 const IntervalPartition& to) {
  const auto old = build_all_schedules(g, from);
  const auto patched = rebuild_all(g, from, to, old);
  const auto scratch = build_all_schedules(g, to);
  for (int r = 0; r < from.nparts(); ++r) {
    expect_identical(patched[static_cast<std::size_t>(r)],
                     scratch[static_cast<std::size_t>(r)], r);
  }
}

TEST(IncrementalRebuild, IdentityRemapReproducesSchedule) {
  Rng rng(3);
  const Csr g = graph::random_delaunay(600, 17);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  check_remap(g, part, part);
}

TEST(IncrementalRebuild, MatchesScratchAcrossRandomDeltas) {
  const Csr g = graph::random_delaunay(800, 23);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(1000 + seed);
    const std::size_t p = 2 + seed % 5;  // 2..6 ranks
    const auto from = test::random_partition(g.num_vertices(), p, rng);
    const auto to = test::random_partition(g.num_vertices(), p, rng);
    check_remap(g, from, to);
  }
}

TEST(IncrementalRebuild, MatchesScratchAfterMcrRearrangement) {
  // MCR remaps change the processor *arrangement*, so intervals can move
  // wholesale — the hardest delta for the patcher.
  const Csr g = graph::random_delaunay(800, 29);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(2000 + seed);
    const std::size_t p = 3 + seed % 3;
    const auto from = test::random_partition(g.num_vertices(), p, rng);
    const auto new_w = random_weights(p, rng);
    const auto to = partition::repartition_mcr(from, new_w);
    check_remap(g, from, to);
  }
}

TEST(IncrementalRebuild, DisjointIntervalsFallBackToFullScan) {
  // Extreme redistribution: swap the halves so no rank keeps anything.
  const Csr g = graph::random_delaunay(500, 31);
  const auto n = g.num_vertices();
  const auto from = IntervalPartition::from_sizes(std::vector<Vertex>{n / 2, n - n / 2});
  const auto to = IntervalPartition::from_sizes_arranged(
      std::vector<Vertex>{n - n / 2, n / 2}, partition::Arrangement{1, 0});
  check_remap(g, from, to);
}

}  // namespace
}  // namespace stance::sched
