// Tests for the Bowyer–Watson Delaunay triangulator, including brute-force
// verification of the empty-circumcircle property.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builders.hpp"
#include "graph/delaunay.hpp"
#include "support/rng.hpp"

namespace stance::graph {
namespace {

TEST(Delaunay, RejectsDegenerateInput) {
  EXPECT_THROW(delaunay_triangulate(std::vector<Point2>{{0, 0}, {1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(delaunay_triangulate(std::vector<Point2>{{0, 0}, {1, 1}, {0, 0}}),
               std::invalid_argument);
}

TEST(Delaunay, SingleTriangle) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto tris = delaunay_triangulate(pts);
  ASSERT_EQ(tris.size(), 1u);
  std::vector<Vertex> v{tris[0].v[0], tris[0].v[1], tris[0].v[2]};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<Vertex>{0, 1, 2}));
}

TEST(Delaunay, SquareSplitsIntoTwoTriangles) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {1, 1.05}, {0, 1}};
  const auto tris = delaunay_triangulate(pts);
  EXPECT_EQ(tris.size(), 2u);
  EXPECT_EQ(delaunay_violations(pts, tris), 0u);
}

TEST(Delaunay, UniformPointsTriangleCountNearTwoN) {
  const auto pts = random_points(200, 31);
  const auto tris = delaunay_triangulate(pts);
  EXPECT_GT(tris.size(), 300u);       // ~2n - h - 2 for uniform points
  EXPECT_LT(tris.size(), 2u * 200u);  // planar upper bound
  EXPECT_EQ(delaunay_violations(pts, tris), 0u);
}

class DelaunayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelaunayProperty, EmptyCircumcirclesOnRandomPointSets) {
  const auto pts = random_points(120, GetParam());
  const auto tris = delaunay_triangulate(pts);
  EXPECT_EQ(delaunay_violations(pts, tris), 0u);
}

TEST_P(DelaunayProperty, GraphIsPlanarScaleAndConnected) {
  const Csr g = random_delaunay(150, GetParam() + 1000);
  EXPECT_EQ(g.num_vertices(), 150);
  EXPECT_LE(g.num_edges(), 3 * 150 - 6);  // planar: E <= 3V - 6
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_coords());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayProperty, ::testing::Range<std::uint64_t>(0, 12));

TEST(Delaunay, DeterministicForSeed) {
  const Csr a = random_delaunay(500, 7);
  const Csr b = random_delaunay(500, 7);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.targets(), b.targets());
}

TEST(Delaunay, ClusteredPointsTriangulate) {
  const auto pts = clustered_points(400, 4, 11);
  const auto tris = delaunay_triangulate(pts);
  EXPECT_EQ(delaunay_violations(pts, tris), 0u);
}

TEST(Delaunay, GridPointsWithJitter) {
  // Near-degenerate (grid-like) configurations still triangulate when
  // lightly jittered.
  Rng rng(3);
  std::vector<Point2> pts;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      pts.push_back({x + 1e-4 * rng.uniform(), y + 1e-4 * rng.uniform()});
    }
  }
  const auto tris = delaunay_triangulate(pts);
  EXPECT_GT(tris.size(), 200u);
  EXPECT_EQ(delaunay_violations(pts, tris), 0u);
}

TEST(Delaunay, PaperScaleMeshBuilds) {
  const Csr g = graph::paper_mesh();
  EXPECT_EQ(g.num_vertices(), 30269);
  EXPECT_GT(g.num_edges(), 80000);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace stance::graph
