// Unit + property tests for sim::LoadProfile — the availability model behind
// the paper's "competing load" experiments.
#include <gtest/gtest.h>

#include "sim/load_profile.hpp"

namespace stance::sim {
namespace {

TEST(LoadProfile, DefaultIsFullyAvailable) {
  LoadProfile p;
  EXPECT_DOUBLE_EQ(p.availability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.availability(1e9), 1.0);
  EXPECT_DOUBLE_EQ(p.integrate(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(p.finish_time(3.0, 7.0), 10.0);
}

TEST(LoadProfile, ConstantHalf) {
  const auto p = LoadProfile::constant(0.5);
  EXPECT_DOUBLE_EQ(p.availability(5.0), 0.5);
  EXPECT_DOUBLE_EQ(p.integrate(0.0, 10.0), 5.0);
  // 4 busy seconds at half speed take 8 wall seconds.
  EXPECT_DOUBLE_EQ(p.finish_time(2.0, 4.0), 10.0);
}

TEST(LoadProfile, CompetingJobsFairShare) {
  EXPECT_DOUBLE_EQ(LoadProfile::competing_jobs(0).availability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(LoadProfile::competing_jobs(1).availability(0.0), 0.5);
  EXPECT_DOUBLE_EQ(LoadProfile::competing_jobs(2).availability(0.0), 1.0 / 3.0);
}

TEST(LoadProfile, StepChangesAvailability) {
  const auto p = LoadProfile::step(10.0, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(p.availability(9.999), 1.0);
  EXPECT_DOUBLE_EQ(p.availability(10.0), 0.25);
  // Busy work spanning the step: 12 busy seconds starting at 0 =
  // 10 (full) + 2 more at quarter speed = 8 wall -> finish at 18.
  EXPECT_DOUBLE_EQ(p.finish_time(0.0, 12.0), 18.0);
  EXPECT_DOUBLE_EQ(p.integrate(0.0, 18.0), 12.0);
}

TEST(LoadProfile, StepFromLoadedToFree) {
  const auto p = LoadProfile::step(4.0, 0.5, 1.0);
  // 4 busy seconds: 2 delivered by t=4, remaining 2 at full speed -> t=6.
  EXPECT_DOUBLE_EQ(p.finish_time(0.0, 4.0), 6.0);
}

TEST(LoadProfile, FinishTimeZeroBusyIsStart) {
  const auto p = LoadProfile::step(1.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(p.finish_time(42.0, 0.0), 42.0);
}

TEST(LoadProfile, TraceMultiSegment) {
  const auto p = LoadProfile::trace({{0.0, 1.0}, {5.0, 0.2}, {10.0, 0.8}});
  EXPECT_DOUBLE_EQ(p.availability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.availability(7.0), 0.2);
  EXPECT_DOUBLE_EQ(p.availability(100.0), 0.8);
  EXPECT_DOUBLE_EQ(p.integrate(0.0, 12.0), 5.0 + 1.0 + 1.6);
}

TEST(LoadProfile, PeriodicAvailabilityWraps) {
  // 10 s period: 0.3 available for the first 4 s, 1.0 for the rest.
  const auto p = LoadProfile::periodic(10.0, 0.4, 0.3, 1.0);
  EXPECT_DOUBLE_EQ(p.availability(1.0), 0.3);
  EXPECT_DOUBLE_EQ(p.availability(5.0), 1.0);
  EXPECT_DOUBLE_EQ(p.availability(11.0), 0.3);
  EXPECT_DOUBLE_EQ(p.availability(25.0), 1.0);
}

TEST(LoadProfile, PeriodicIntegrateOverWholePeriods) {
  const auto p = LoadProfile::periodic(10.0, 0.4, 0.3, 1.0);
  const double per_period = 4.0 * 0.3 + 6.0 * 1.0;  // 7.2
  EXPECT_NEAR(p.integrate(0.0, 30.0), 3.0 * per_period, 1e-9);
  EXPECT_NEAR(p.integrate(5.0, 15.0), 5.0 + 0.3 * 4.0 + 1.0, 1e-9);
}

TEST(LoadProfile, PeriodicFinishTimeAcrossManyPeriods) {
  const auto p = LoadProfile::periodic(10.0, 0.4, 0.3, 1.0);
  const double per_period = 7.2;
  // 5 whole periods' worth of busy time starting at 0 finishes at t=50.
  EXPECT_NEAR(p.finish_time(0.0, 5.0 * per_period), 50.0, 1e-9);
  // Half a period more: 4*0.3=1.2 from the busy window, then 2.4 at full.
  EXPECT_NEAR(p.finish_time(0.0, 5.0 * per_period + 1.2 + 2.4), 56.4, 1e-9);
}

TEST(LoadProfile, ValidationRejectsBadSegments) {
  EXPECT_THROW(LoadProfile::trace({}), std::invalid_argument);
  EXPECT_THROW(LoadProfile::trace({{1.0, 0.5}}), std::invalid_argument);  // not at 0
  EXPECT_THROW(LoadProfile::trace({{0.0, 0.0}}), std::invalid_argument);  // avail 0
  EXPECT_THROW(LoadProfile::trace({{0.0, 1.5}}), std::invalid_argument);  // avail > 1
  EXPECT_THROW(LoadProfile::trace({{0.0, 0.5}, {0.0, 0.6}}), std::invalid_argument);
  EXPECT_THROW(LoadProfile::step(-1.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(LoadProfile::periodic(0.0, 0.5, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(LoadProfile::competing_jobs(-1), std::invalid_argument);
}

// Property: finish_time and integrate are inverse operations.
class ProfileRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProfileRoundTrip, IntegrateOfFinishEqualsBusy) {
  const int variant = GetParam();
  LoadProfile p;
  switch (variant % 5) {
    case 0: p = LoadProfile::constant(0.7); break;
    case 1: p = LoadProfile::step(3.0, 1.0, 0.4); break;
    case 2: p = LoadProfile::trace({{0.0, 0.9}, {2.0, 0.3}, {7.5, 0.6}}); break;
    case 3: p = LoadProfile::periodic(4.0, 0.5, 0.25, 1.0); break;
    case 4: p = LoadProfile::competing_jobs(3); break;
  }
  const double start = 0.37 * static_cast<double>(variant);
  const double busy = 0.91 * static_cast<double>(variant + 1);
  const double finish = p.finish_time(start, busy);
  EXPECT_GE(finish, start);
  EXPECT_NEAR(p.integrate(start, finish), busy, 1e-9 * (1.0 + busy));
}

TEST_P(ProfileRoundTrip, FinishTimeIsMonotoneInBusy) {
  const int variant = GetParam();
  const auto p = (variant % 2 == 0) ? LoadProfile::periodic(3.0, 0.3, 0.2, 0.9)
                                    : LoadProfile::step(5.0, 0.8, 0.3);
  double prev = p.finish_time(1.0, 0.0);
  for (int k = 1; k <= 20; ++k) {
    const double f = p.finish_time(1.0, 0.5 * k);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProfileRoundTrip, ::testing::Range(0, 25));

}  // namespace
}  // namespace stance::sim
