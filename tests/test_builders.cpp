// Tests for graph builders and graph I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builders.hpp"
#include "graph/io.hpp"

namespace stance::graph {
namespace {

TEST(Grid2d, StructureAndCoords) {
  const Csr g = grid_2d(4, 3);
  EXPECT_EQ(g.num_vertices(), 12);
  // Edges: 3*3 horizontal + 4*2 vertical = 17.
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_TRUE(g.has_coords());
  EXPECT_TRUE(g.is_connected());
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(5), 4);  // (1,1) interior
}

TEST(Grid2d, SingleRowIsAPath) {
  const Csr g = grid_2d(5, 1);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Grid2dTri, AddsOneDiagonalPerCell) {
  const Csr g = grid_2d_tri(4, 3);
  EXPECT_EQ(g.num_edges(), 17 + 3 * 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(Grid2dTri, RejectsDegenerate) {
  EXPECT_THROW(grid_2d_tri(1, 5), std::invalid_argument);
  EXPECT_THROW(grid_2d(0, 5), std::invalid_argument);
}

TEST(RandomPoints, InUnitSquareAndDeterministic) {
  const auto a = random_points(100, 5);
  const auto b = random_points(100, 5);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LT(a[i].x, 1.0);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LT(a[i].y, 1.0);
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

TEST(ClusteredPoints, StayInUnitSquare) {
  const auto pts = clustered_points(500, 3, 7);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(RandomGeometric, EdgesRespectRadius) {
  const Csr g = random_geometric(300, 0.08, 13);
  EXPECT_TRUE(g.has_coords());
  const Vertex nv = g.num_vertices();
  for (Vertex v = 0; v < nv; ++v) {
    for (const Vertex u : g.neighbors(v)) {
      EXPECT_LE(dist(g.coord(v), g.coord(u)), 0.08 + 1e-12);
    }
  }
}

TEST(RandomGeometric, MatchesBruteForce) {
  const Csr g = random_geometric(120, 0.15, 21);
  const auto& pts = g.coords();
  EdgeIndex expected = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (dist(pts[i], pts[j]) <= 0.15) ++expected;
    }
  }
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(TinyMesh, IsSmallAndConnected) {
  const Csr g = tiny_mesh();
  EXPECT_EQ(g.num_vertices(), 9);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphIo, RoundTripWithCoords) {
  const Csr g = grid_2d_tri(5, 4);
  std::stringstream ss;
  write_graph(ss, g);
  const Csr g2 = read_graph(ss);
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.offsets(), g.offsets());
  EXPECT_EQ(g2.targets(), g.targets());
  ASSERT_TRUE(g2.has_coords());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g2.coord(v).x, g.coord(v).x);
    EXPECT_DOUBLE_EQ(g2.coord(v).y, g.coord(v).y);
  }
}

TEST(GraphIo, RoundTripWithoutCoords) {
  const Csr g = Csr::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  std::stringstream ss;
  write_graph(ss, g);
  const Csr g2 = read_graph(ss);
  EXPECT_EQ(g2.num_edges(), 2);
  EXPECT_FALSE(g2.has_coords());
}

TEST(GraphIo, RejectsBadMagic) {
  std::stringstream ss("not-a-graph 1 3 0 0\n");
  EXPECT_THROW(read_graph(ss), std::invalid_argument);
}

TEST(GraphIo, RejectsTruncatedStream) {
  std::stringstream ss("stance-graph 1 4 3 0\n0 1\n");
  EXPECT_THROW(read_graph(ss), std::invalid_argument);
}

TEST(GraphIo, FileRoundTripAndOpenFailures) {
  const Csr g = grid_2d_tri(3, 3);
  const std::string path = ::testing::TempDir() + "stance_io_test.graph";
  save_graph(path, g);
  const Csr g2 = load_graph(path);
  EXPECT_EQ(g2.offsets(), g.offsets());
  EXPECT_EQ(g2.targets(), g.targets());
  EXPECT_THROW(load_graph("/nonexistent-dir/missing.graph"), std::invalid_argument);
  EXPECT_THROW(save_graph("/nonexistent-dir/out.graph", g), std::invalid_argument);
}

TEST(ChacoIo, SkipsCommentLinesAnywhere) {
  std::stringstream ss("% a path of three vertices\n3 2\n2\n% mid-stream comment\n1 3\n2\n");
  const Csr g = read_chaco(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(ChacoIo, RejectsFewerAdjacencyLinesThanVertices) {
  std::stringstream ss("3 2\n2\n1 3\n");  // vertex 3's line is missing
  EXPECT_THROW(read_chaco(ss), std::invalid_argument);
}

TEST(ChacoIo, RejectsEdgeCountMismatchWithHeader) {
  std::stringstream ss("3 3\n2\n1 3\n2\n");  // header claims 3 edges, lists 2
  EXPECT_THROW(read_chaco(ss), std::invalid_argument);
}

TEST(ChacoIo, RejectsNegativeHeader) {
  std::stringstream bad_nv("-1 0\n");
  EXPECT_THROW(read_chaco(bad_nv), std::invalid_argument);
  std::stringstream empty("");
  EXPECT_THROW(read_chaco(empty), std::invalid_argument);
}

}  // namespace
}  // namespace stance::graph
