// Fault-injection and failure-detection suite (ISSUE 7). Covers the
// deterministic FaultInjector rules, the fail-stop membership protocol
// (mark_dead / PeerFailed / agree_on_survivors), injected frame faults
// (drop / delay / truncate / corrupt) on every backend, receive-deadline
// failure detection on the real backends, and the Cluster::run watchdog.
// Registered under `ctest -L fault`; the _shm/_tcp variants re-run the
// whole file on the real transports via STANCE_TRANSPORT.
//
// The liveness contract under test: an injected fault must never hang a
// rank — every blocked operation resolves into PeerFailed (and recovery),
// RankKilled, or a clean deadline abort.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mp/cluster.hpp"
#include "mp/errors.hpp"
#include "mp/fault.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using mp::FailCause;
using mp::FaultPlan;
using mp::FrameFault;
using mp::FrameRule;
using mp::KillRule;

/// Scoped environment override restoring the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

mp::Cluster make_cluster(int nprocs) {
  return mp::Cluster(sim::MachineSpec::uniform(static_cast<std::size_t>(nprocs)),
                     mp::TransportKind::kDefault);
}

// --- FaultInjector rule semantics -------------------------------------------

TEST(FaultInjector, KillRuleFiresExactlyOnce) {
  mp::FaultInjector inj(FaultPlan{.kills = {KillRule{.rank = 1, .after_sends = 3}}});
  EXPECT_FALSE(inj.should_die(1, 0.0, 2));
  EXPECT_FALSE(inj.should_die(0, 0.0, 100));  // other ranks unaffected
  EXPECT_TRUE(inj.should_die(1, 0.0, 3));
  EXPECT_FALSE(inj.should_die(1, 0.0, 4));  // fired; never again
}

TEST(FaultInjector, KillRuleByVirtualTime) {
  mp::FaultInjector inj(
      FaultPlan{.kills = {KillRule{.rank = 0, .at_virtual_time = 5.0}}});
  EXPECT_FALSE(inj.should_die(0, 4.999, 0));
  EXPECT_TRUE(inj.should_die(0, 5.0, 0));
  EXPECT_FALSE(inj.should_die(0, 6.0, 0));
}

TEST(FaultInjector, FrameRuleSkipsThenFaultsACount) {
  mp::FaultInjector inj(FaultPlan{
      .frames = {FrameRule{.from = 0, .to = 1, .after_nth = 2, .count = 2}}});
  EXPECT_FALSE(inj.on_frame(0, 1).touched());  // 1st
  EXPECT_FALSE(inj.on_frame(0, 1).touched());  // 2nd
  EXPECT_TRUE(inj.on_frame(0, 1).drop);        // 3rd
  EXPECT_TRUE(inj.on_frame(0, 1).drop);        // 4th
  EXPECT_FALSE(inj.on_frame(0, 1).touched());  // 5th: past the count
  EXPECT_FALSE(inj.on_frame(0, 2).touched());  // other pair never matches
}

TEST(FaultInjector, OnlyPayloadDamageUntrusts) {
  mp::FaultInjector drops(FaultPlan{.frames = {FrameRule{.fault = FrameFault::kDrop}}});
  mp::FaultInjector delays(FaultPlan{
      .frames = {FrameRule{.fault = FrameFault::kDelay, .delay_seconds = 1.0}}});
  mp::FaultInjector truncates(FaultPlan{
      .frames = {FrameRule{.fault = FrameFault::kTruncate, .truncate_to = 4}}});
  mp::FaultInjector corrupts(
      FaultPlan{.frames = {FrameRule{.fault = FrameFault::kCorrupt}}});
  EXPECT_FALSE(drops.untrusts());
  EXPECT_FALSE(delays.untrusts());
  EXPECT_TRUE(truncates.untrusts());
  EXPECT_TRUE(corrupts.untrusts());
}

TEST(FaultInjector, RejectsUnfireablePlans) {
  EXPECT_THROW(mp::FaultInjector(FaultPlan{.kills = {KillRule{.rank = -1}}}),
               std::invalid_argument);
  EXPECT_THROW(mp::FaultInjector(FaultPlan{.kills = {KillRule{.rank = 0}}}),
               std::invalid_argument);  // no trigger armed
  EXPECT_THROW(
      mp::FaultInjector(FaultPlan{.frames = {FrameRule{.count = 0}}}),
      std::invalid_argument);
}

// --- transport membership protocol ------------------------------------------

TEST(TransportMembership, MarkDeadIsIdempotentAndBumpsEpochOnce) {
  auto cluster = make_cluster(4);
  auto& t = cluster.transport();
  const std::uint32_t before = t.epoch();
  t.mark_dead(2, FailCause::kTimeout);
  t.mark_dead(2, FailCause::kSocket);  // idempotent: first cause sticks
  EXPECT_EQ(t.epoch(), before + 1);
  EXPECT_TRUE(t.is_dead(2));
  EXPECT_FALSE(t.is_dead(0));
  EXPECT_EQ(t.dead_ranks(), (std::vector<mp::Rank>{2}));
  EXPECT_EQ(cluster.survivor_ranks(), (std::vector<mp::Rank>{0, 1, 3}));
  t.reset();
  EXPECT_TRUE(t.dead_ranks().empty());
}

// --- kill rules end to end ----------------------------------------------------

TEST(FaultPlanCluster, KilledRankSurfacesAsPeerFailedAndSurvivorsAgree) {
  auto cluster = make_cluster(4);
  // Rank 3 dies entering its very first operation (the barrier).
  cluster.set_fault_plan(FaultPlan{.kills = {KillRule{.rank = 3, .after_sends = 0}}});
  std::vector<int> survivor_count(4, -1);
  cluster.run([&](mp::Process& p) {
    try {
      p.barrier();
      FAIL() << "rank " << p.rank() << " passed a barrier missing a member";
    } catch (const mp::PeerFailed& e) {
      EXPECT_EQ(e.peer(), 3);
      EXPECT_EQ(e.cause(), FailCause::kKilled);
      const auto agreement = p.agree_on_survivors();
      EXPECT_EQ(agreement.survivors, (std::vector<mp::Rank>{0, 1, 2}));
      survivor_count[static_cast<std::size_t>(p.rank())] =
          static_cast<int>(agreement.survivors.size());
      // Ordinary communication works again among the survivors.
      if (p.rank() == 0) p.send_value(1, /*tag=*/5, 77);
      if (p.rank() == 1) EXPECT_EQ(p.recv_value<int>(0, 5), 77);
      p.barrier();
    }
  });
  EXPECT_EQ(cluster.dead_ranks(), (std::vector<mp::Rank>{3}));
  EXPECT_EQ(cluster.survivor_ranks(), (std::vector<mp::Rank>{0, 1, 2}));
  for (const mp::Rank r : {0, 1, 2}) {
    EXPECT_EQ(survivor_count[static_cast<std::size_t>(r)], 3) << "rank " << r;
  }
}

TEST(FaultPlanCluster, KillByVirtualTimeMidLoop) {
  auto cluster = make_cluster(3);
  cluster.set_fault_plan(
      FaultPlan{.kills = {KillRule{.rank = 0, .at_virtual_time = 1.0}}});
  cluster.run([&](mp::Process& p) {
    try {
      for (int it = 0; it < 10; ++it) {
        p.compute(0.3);
        p.barrier();
      }
      FAIL() << "rank " << p.rank() << " outlived the kill";
    } catch (const mp::PeerFailed& e) {
      EXPECT_EQ(e.peer(), 0);
      EXPECT_EQ(e.cause(), FailCause::kKilled);
      (void)p.agree_on_survivors();
    }
  });
  EXPECT_EQ(cluster.dead_ranks(), (std::vector<mp::Rank>{0}));
}

TEST(FaultPlanCluster, PlanClearsAndClusterRunsCleanAgain) {
  auto cluster = make_cluster(2);
  cluster.set_fault_plan(FaultPlan{.kills = {KillRule{.rank = 1, .after_sends = 0}}});
  cluster.run([](mp::Process& p) {
    if (p.rank() == 1) {
      p.compute(0.0);  // dies here
      return;
    }
    try {
      p.barrier();
    } catch (const mp::PeerFailed&) {
      (void)p.agree_on_survivors();
    }
  });
  EXPECT_EQ(cluster.dead_ranks(), (std::vector<mp::Rank>{1}));
  cluster.set_fault_plan(FaultPlan{});  // empty plan clears injection
  EXPECT_EQ(cluster.fault_plan(), nullptr);
  cluster.transport().reset();
  cluster.run([](mp::Process& p) {
    if (p.rank() == 0) p.send_value(1, 1, 9);
    if (p.rank() == 1) EXPECT_EQ(p.recv_value<int>(0, 1), 9);
  });
  EXPECT_TRUE(cluster.dead_ranks().empty());
}

// --- frame faults -------------------------------------------------------------

TEST(FaultPlanCluster, DroppedFrameNeverHangsARank) {
  // The dropped message leaves rank 1 blocked. On the real backends the
  // receive deadline declares the silent peer dead (PeerFailed/kTimeout and
  // a clean shrink to {1}); the virtual oracle has no failure detector, so
  // the run watchdog must fail the job instead. Either way: no hang.
  auto cluster = make_cluster(2);
  cluster.set_fault_plan(FaultPlan{
      .frames = {FrameRule{.from = 0, .to = 1, .fault = FrameFault::kDrop}}});
  if (cluster.transport_kind() == mp::TransportKind::kVirtual) {
    ScopedEnv deadline("STANCE_RUN_DEADLINE_MS", "2000");
    try {
      cluster.run([](mp::Process& p) {
        if (p.rank() == 0) p.send_value(1, /*tag=*/7, 42);
        if (p.rank() == 1) (void)p.recv_value<int>(0, 7);
      });
      FAIL() << "watchdog did not fire";
    } catch (const mp::RunDeadlineExceeded& e) {
      EXPECT_NE(std::string(e.what()).find("rank 1: blocked"), std::string::npos)
          << e.what();
    }
    return;
  }
  cluster.transport().set_peer_timeout_ms(150);
  cluster.run([](mp::Process& p) {
    if (p.rank() == 0) {
      p.send_value(1, /*tag=*/7, 42);
      return;  // finished; its liveness stamp freezes
    }
    try {
      (void)p.recv_value<int>(0, 7);
      FAIL() << "dropped frame was delivered";
    } catch (const mp::PeerFailed& e) {
      EXPECT_EQ(e.peer(), 0);
      EXPECT_EQ(e.cause(), FailCause::kTimeout);
      const auto agreement = p.agree_on_survivors();
      EXPECT_EQ(agreement.survivors, (std::vector<mp::Rank>{1}));
    }
  });
  EXPECT_EQ(cluster.dead_ranks(), (std::vector<mp::Rank>{0}));
}

TEST(FaultPlanCluster, DelayedFrameArrivesLateButIntact) {
  constexpr double kDelay = 2.5;
  auto cluster = make_cluster(2);
  cluster.set_fault_plan(FaultPlan{
      .frames = {FrameRule{.from = 0, .to = 1, .fault = FrameFault::kDelay,
                           .delay_seconds = kDelay}}});
  cluster.run([&](mp::Process& p) {
    if (p.rank() == 0) p.send_value(1, /*tag=*/3, 1234);
    if (p.rank() == 1) {
      EXPECT_EQ(p.recv_value<int>(0, 3), 1234);
      EXPECT_GE(p.now(), kDelay);  // the delay is charged as arrival latency
    }
  });
}

TEST(FaultPlanCluster, TruncatedFrameSurfacesAsAttributedTransportError) {
  // A payload-damaging plan makes every backend untrusted: the shape check
  // must surface as a recoverable TransportError naming the sender, not an
  // internal assertion.
  auto cluster = make_cluster(2);
  cluster.set_fault_plan(FaultPlan{
      .frames = {FrameRule{.from = 0, .to = 1, .fault = FrameFault::kTruncate,
                           .truncate_to = 4}}});
  EXPECT_FALSE(cluster.transport().trusted());
  try {
    cluster.run([](mp::Process& p) {
      if (p.rank() == 0) {
        const std::vector<int> three{1, 2, 3};
        p.send(1, /*tag=*/4, three);
      }
      if (p.rank() == 1) {
        std::vector<int> out(3);
        p.recv_into(0, /*tag=*/4, std::span<int>(out));
      }
    });
    FAIL() << "truncated frame passed the shape check";
  } catch (const mp::TransportError& e) {
    EXPECT_EQ(e.peer(), 0);
    EXPECT_EQ(e.cause(), FailCause::kPayloadMismatch);
  }
}

TEST(FaultPlanCluster, CorruptedFrameDeliversDeterministicallyDamagedBytes) {
  auto cluster = make_cluster(2);
  cluster.set_fault_plan(FaultPlan{
      .frames = {FrameRule{.from = 0, .to = 1, .fault = FrameFault::kCorrupt}}});
  cluster.run([](mp::Process& p) {
    constexpr std::uint32_t kSent = 0x11223344u;
    if (p.rank() == 0) p.send_value(1, /*tag=*/2, kSent);
    if (p.rank() == 1) {
      // Corruption XORs every payload byte with 0xA5 — deterministic, so the
      // damage is assertable, and size-preserving, so it passes shape checks
      // and must be caught by application-level validation.
      EXPECT_EQ(p.recv_value<std::uint32_t>(0, 2), kSent ^ 0xA5A5A5A5u);
    }
  });
}

// --- watchdog -----------------------------------------------------------------

TEST(Watchdog, DeadlockedRunFailsWithRankStateDump) {
  auto cluster = make_cluster(2);
  ScopedEnv deadline("STANCE_RUN_DEADLINE_MS", "300");
  try {
    cluster.run([](mp::Process& p) {
      if (p.rank() == 0) (void)p.recv_raw(1, /*tag=*/9);  // nobody sends
    });
    FAIL() << "watchdog did not fire";
  } catch (const mp::RunDeadlineExceeded& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("STANCE_RUN_DEADLINE_MS"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0: blocked"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1: finished"), std::string::npos) << what;
  }
  // The abort resets the transport: the same cluster must run again.
  cluster.run([](mp::Process& p) {
    if (p.rank() == 0) p.send_value(1, 1, 5);
    if (p.rank() == 1) EXPECT_EQ(p.recv_value<int>(0, 1), 5);
  });
}

// --- timeout-based failure detection (real backends) -------------------------

TEST(FailureDetection, SilentPeerIsDeclaredDeadWithinTheDeadline) {
  auto cluster = make_cluster(2);
  if (cluster.transport_kind() == mp::TransportKind::kVirtual) {
    GTEST_SKIP() << "the virtual oracle has no failure detector (watchdog covers it)";
  }
  cluster.transport().set_peer_timeout_ms(100);
  cluster.run([](mp::Process& p) {
    if (p.rank() == 0) return;  // never sends: indistinguishable from hung
    try {
      (void)p.recv_raw(0, /*tag=*/1);
      FAIL() << "receive completed without a sender";
    } catch (const mp::PeerFailed& e) {
      EXPECT_EQ(e.peer(), 0);
      EXPECT_EQ(e.cause(), FailCause::kTimeout);
      const auto agreement = p.agree_on_survivors();
      EXPECT_EQ(agreement.survivors, (std::vector<mp::Rank>{1}));
    }
  });
  EXPECT_EQ(cluster.dead_ranks(), (std::vector<mp::Rank>{0}));
}

}  // namespace
}  // namespace stance
