// Tests for interval partitions and apportionment.
#include <gtest/gtest.h>

#include <numeric>

#include "partition/interval.hpp"
#include "support/rng.hpp"

namespace stance::partition {
namespace {

TEST(Apportion, ExactDivision) {
  const std::vector<double> w{1.0, 1.0};
  EXPECT_EQ(apportion(10, w), (std::vector<Vertex>{5, 5}));
}

TEST(Apportion, LargestRemainderRounding) {
  // 100 elements at the paper's Fig. 5 weights.
  const std::vector<double> w{0.27, 0.18, 0.34, 0.07, 0.14};
  EXPECT_EQ(apportion(100, w), (std::vector<Vertex>{27, 18, 34, 7, 14}));
}

TEST(Apportion, SumsToNAlways) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto w = random_weights(1 + trial % 10, rng);
    const auto n = static_cast<Vertex>(rng.below(10000));
    const auto sizes = apportion(n, w);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), Vertex{0}), n);
  }
}

TEST(Apportion, ZeroElements) {
  const std::vector<double> w{0.5, 0.5};
  EXPECT_EQ(apportion(0, w), (std::vector<Vertex>{0, 0}));
}

TEST(Apportion, RejectsBadWeights) {
  EXPECT_THROW(apportion(10, std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(apportion(10, std::vector<double>{-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(apportion(10, std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(apportion(-1, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(IntervalPartition, FromWeightsIdentityArrangement) {
  const std::vector<double> w{1.0, 3.0};
  const auto part = IntervalPartition::from_weights(8, w);
  EXPECT_EQ(part.nparts(), 2);
  EXPECT_EQ(part.total(), 8);
  EXPECT_EQ(part.first(0), 0);
  EXPECT_EQ(part.size(0), 2);
  EXPECT_EQ(part.first(1), 2);
  EXPECT_EQ(part.size(1), 6);
  EXPECT_EQ(part.arrangement(), (Arrangement{0, 1}));
}

TEST(IntervalPartition, ArrangedLayout) {
  const std::vector<Vertex> sizes{2, 3, 5};
  const Arrangement arr{2, 0, 1};
  const auto part = IntervalPartition::from_sizes_arranged(sizes, arr);
  EXPECT_EQ(part.first(2), 0);
  EXPECT_EQ(part.first(0), 5);
  EXPECT_EQ(part.first(1), 7);
  EXPECT_EQ(part.total(), 10);
}

TEST(IntervalPartition, OwnerBinaryAndLinearAgree) {
  const std::vector<Vertex> sizes{3, 0, 4, 2};
  const Arrangement arr{3, 1, 0, 2};
  const auto part = IntervalPartition::from_sizes_arranged(sizes, arr);
  for (Vertex g = 0; g < part.total(); ++g) {
    EXPECT_EQ(part.owner(g), part.owner_linear(g)) << "element " << g;
  }
}

TEST(IntervalPartition, OwnerRandomizedAgreement) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t p = 1 + rng.below(8);
    const auto w = random_weights(p, rng);
    Arrangement arr(p);
    std::iota(arr.begin(), arr.end(), 0);
    shuffle(arr, rng);
    const auto part = IntervalPartition::from_weights_arranged(
        static_cast<Vertex>(50 + rng.below(200)), w, arr);
    for (Vertex g = 0; g < part.total(); ++g) {
      const Rank o = part.owner(g);
      EXPECT_EQ(o, part.owner_linear(g));
      EXPECT_TRUE(part.owns(o, g));
    }
  }
}

TEST(IntervalPartition, DereferenceGivesLocalIndex) {
  const std::vector<Vertex> sizes{4, 6};
  const auto part = IntervalPartition::from_sizes(sizes);
  const auto [p0, l0] = part.dereference(2);
  EXPECT_EQ(p0, 0);
  EXPECT_EQ(l0, 2);
  const auto [p1, l1] = part.dereference(7);
  EXPECT_EQ(p1, 1);
  EXPECT_EQ(l1, 3);
  EXPECT_EQ(part.to_global(1, 3), 7);
}

TEST(IntervalPartition, OwnerOutOfRangeRejected) {
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{5});
  EXPECT_THROW((void)part.owner(-1), std::invalid_argument);
  EXPECT_THROW((void)part.owner(5), std::invalid_argument);
}

TEST(IntervalPartition, ArrangementMustBePermutation) {
  const std::vector<Vertex> sizes{1, 1};
  EXPECT_THROW(IntervalPartition::from_sizes_arranged(sizes, Arrangement{0, 0}),
               std::invalid_argument);
  EXPECT_THROW(IntervalPartition::from_sizes_arranged(sizes, Arrangement{0, 2}),
               std::invalid_argument);
  EXPECT_THROW(IntervalPartition::from_sizes_arranged(sizes, Arrangement{0}),
               std::invalid_argument);
}

TEST(IntervalPartition, OverlapPaperFigure5) {
  // Paper Fig. 5: 100 elements, old weights .27/.18/.34/.07/.14, new weights
  // .10/.13/.29/.24/.24. The paper quotes 29 overlapped for the original
  // arrangement and 65 for (P0,P3,P1,P2,P4); exact interval arithmetic on
  // those weights gives 31 and 64 (the paper's figure is hand-approximated —
  // see EXPERIMENTS.md). The *effect* is identical: the reordering roughly
  // halves the data movement.
  const std::vector<double> old_w{0.27, 0.18, 0.34, 0.07, 0.14};
  const std::vector<double> new_w{0.10, 0.13, 0.29, 0.24, 0.24};
  const auto from = IntervalPartition::from_weights(100, old_w);
  const auto same = IntervalPartition::from_weights(100, new_w);
  EXPECT_EQ(from.overlap(same), 31);
  EXPECT_EQ(from.moved(same), 69);
  const auto better =
      IntervalPartition::from_weights_arranged(100, new_w, Arrangement{0, 3, 1, 2, 4});
  EXPECT_EQ(from.overlap(better), 64);
  EXPECT_EQ(from.moved(better), 36);
}

TEST(IntervalPartition, OverlapWithItselfIsTotal) {
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{3, 4, 5});
  EXPECT_EQ(part.overlap(part), 12);
  EXPECT_EQ(part.moved(part), 0);
}

TEST(IntervalPartition, OverlapRequiresMatchingShape) {
  const auto a = IntervalPartition::from_sizes(std::vector<Vertex>{5, 5});
  const auto b = IntervalPartition::from_sizes(std::vector<Vertex>{10});
  EXPECT_THROW((void)a.overlap(b), std::invalid_argument);
  const auto c = IntervalPartition::from_sizes(std::vector<Vertex>{4, 4});
  EXPECT_THROW((void)a.overlap(c), std::invalid_argument);
}

TEST(IntervalPartition, EmptyBlocksHandled) {
  const std::vector<Vertex> sizes{0, 5, 0, 5};
  const auto part = IntervalPartition::from_sizes(sizes);
  EXPECT_EQ(part.owner(0), 1);
  EXPECT_EQ(part.owner(4), 1);
  EXPECT_EQ(part.owner(5), 3);
  EXPECT_EQ(part.owner(9), 3);
}

TEST(IntervalPartition, EqualityComparesIntervals) {
  const auto a = IntervalPartition::from_sizes(std::vector<Vertex>{2, 3});
  const auto b = IntervalPartition::from_sizes(std::vector<Vertex>{2, 3});
  const auto c = IntervalPartition::from_sizes(std::vector<Vertex>{3, 2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace stance::partition
