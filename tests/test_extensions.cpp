// Tests for the library's beyond-the-paper extensions: vertex-weighted
// interval partitioning, load prediction from multiple phases, the
// distributed load-balancing strategy, and per-vertex work in the executor.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/irregular_loop.hpp"
#include "graph/builders.hpp"
#include "lb/adaptive_executor.hpp"
#include "lb/controller.hpp"
#include "lb/predictor.hpp"
#include "mp/cluster.hpp"
#include "partition/interval.hpp"
#include "sched/inspector.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace stance {
namespace {

using partition::Arrangement;
using partition::IntervalPartition;
using partition::Vertex;

// --- vertex-weighted partitioning ---------------------------------------------

TEST(VertexWeights, UniformWeightsMatchCountSplit) {
  const std::vector<double> vw(100, 1.0);
  const std::vector<double> pw{1.0, 1.0};
  const auto weighted = IntervalPartition::from_vertex_weights(vw, pw);
  EXPECT_EQ(weighted.size(0), 50);
  EXPECT_EQ(weighted.size(1), 50);
}

TEST(VertexWeights, HeavyElementsShrinkTheBlock) {
  // First 10 elements carry weight 10, the rest weight 1: an equal-work
  // split must give processor 0 far fewer than half the elements.
  std::vector<double> vw(100, 1.0);
  for (int i = 0; i < 10; ++i) vw[static_cast<std::size_t>(i)] = 10.0;
  const std::vector<double> pw{1.0, 1.0};
  const auto part = IntervalPartition::from_vertex_weights(vw, pw);
  // Total work 190, target 95 each: 10 heavy ones = 100 > 95, so the split
  // lands at 9 or 10 heavy elements.
  EXPECT_LE(part.size(0), 10);
  EXPECT_GE(part.size(0), 9);
}

TEST(VertexWeights, BalancesWorkWithinOneElement) {
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t p = 2 + rng.below(5);
    const auto pw = random_weights(p, rng);
    std::vector<double> vw(200 + rng.below(400));
    double max_w = 0.0;
    for (auto& w : vw) {
      w = rng.uniform(0.1, 4.0);
      max_w = std::max(max_w, w);
    }
    const auto part = IntervalPartition::from_vertex_weights(vw, pw);
    double total = 0.0;
    for (const double w : vw) total += w;
    // Each block's work is within one max-element of its target share.
    for (std::size_t r = 0; r < p; ++r) {
      double work = 0.0;
      for (Vertex g = part.first(static_cast<int>(r)); g < part.end(static_cast<int>(r));
           ++g) {
        work += vw[static_cast<std::size_t>(g)];
      }
      const double target = total * pw[r];
      EXPECT_NEAR(work, target, max_w + 1e-9)
          << "trial " << trial << " rank " << r;
    }
  }
}

TEST(VertexWeights, ArrangedLayoutRespected) {
  const std::vector<double> vw(60, 1.0);
  const std::vector<double> pw{1.0, 1.0, 1.0};
  const auto part = IntervalPartition::from_vertex_weights_arranged(
      vw, pw, Arrangement{2, 0, 1});
  EXPECT_EQ(part.first(2), 0);
  EXPECT_EQ(part.first(0), 20);
  EXPECT_EQ(part.first(1), 40);
}

TEST(VertexWeights, Validation) {
  const std::vector<double> bad_vw{1.0, -1.0};
  const std::vector<double> pw{1.0};
  EXPECT_THROW(IntervalPartition::from_vertex_weights(bad_vw, pw),
               std::invalid_argument);
  const std::vector<double> vw{1.0, 1.0};
  EXPECT_THROW(IntervalPartition::from_vertex_weights(vw, std::vector<double>{}),
               std::invalid_argument);
}

TEST(VertexWeights, DegreeWeightedSplitBalancesLoopWork) {
  // Weighting each vertex by (1 + degree) balances the Fig. 8 loop better
  // than counting vertices when degrees are skewed.
  const auto g = graph::random_geometric(800, 0.08, 3);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> vw(n);
  for (std::size_t v = 0; v < n; ++v) {
    vw[v] = 1.0 + static_cast<double>(g.degree(static_cast<graph::Vertex>(v)));
  }
  const std::vector<double> pw{1.0, 1.0, 1.0};
  const auto by_count = IntervalPartition::from_weights(g.num_vertices(), pw);
  const auto by_work = IntervalPartition::from_vertex_weights(vw, pw);
  auto imbalance = [&](const IntervalPartition& part) {
    double worst = 0.0, total = 0.0;
    for (int r = 0; r < part.nparts(); ++r) {
      double w = 0.0;
      for (Vertex v = part.first(r); v < part.end(r); ++v) {
        w += vw[static_cast<std::size_t>(v)];
      }
      worst = std::max(worst, w);
      total += w;
    }
    return worst / (total / part.nparts());
  };
  EXPECT_LE(imbalance(by_work), imbalance(by_count) + 1e-9);
}

// --- load predictor -----------------------------------------------------------

TEST(Predictor, LastReturnsLastObservation) {
  lb::LoadPredictor p(lb::PredictorKind::kLast);
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(3.0);
  p.observe(5.0);
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(Predictor, EmaSmoothsSpikes) {
  lb::LoadPredictor p(lb::PredictorKind::kEma, 0.25);
  for (int i = 0; i < 20; ++i) p.observe(1.0);
  p.observe(10.0);  // one-off spike
  EXPECT_LT(p.predict(), 4.0);
  EXPECT_GT(p.predict(), 1.0);
}

TEST(Predictor, TrendExtrapolatesLinearDrift) {
  lb::LoadPredictor p(lb::PredictorKind::kTrend, 0.5, 4);
  for (const double v : {1.0, 2.0, 3.0, 4.0}) p.observe(v);
  EXPECT_NEAR(p.predict(), 5.0, 1e-9);
}

TEST(Predictor, TrendNeverPredictsNonPositive) {
  lb::LoadPredictor p(lb::PredictorKind::kTrend, 0.5, 4);
  for (const double v : {4.0, 3.0, 2.0, 0.5}) p.observe(v);
  EXPECT_GT(p.predict(), 0.0);
}

TEST(Predictor, IgnoresEmptyPhases) {
  lb::LoadPredictor p(lb::PredictorKind::kLast);
  p.observe(2.0);
  p.observe(0.0);  // a phase with no items teaches nothing
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  EXPECT_EQ(p.observations(), 1);
}

TEST(Predictor, ResetForgets) {
  lb::LoadPredictor p(lb::PredictorKind::kEma);
  p.observe(7.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(Predictor, Validation) {
  EXPECT_THROW(lb::LoadPredictor(lb::PredictorKind::kEma, 0.0), std::invalid_argument);
  EXPECT_THROW(lb::LoadPredictor(lb::PredictorKind::kTrend, 0.5, 1),
               std::invalid_argument);
  lb::LoadPredictor p;
  EXPECT_THROW(p.observe(-1.0), std::invalid_argument);
}

// --- distributed strategy -------------------------------------------------------

TEST(DistributedLb, MatchesCentralizedDecision) {
  const auto part = IntervalPartition::from_weights(1200, std::vector<double>(4, 1.0));
  lb::LbOptions central;
  central.objective.per_element = 1e-6;
  lb::LbOptions distributed = central;
  distributed.strategy = lb::LbStrategy::kDistributed;

  auto run = [&](const lb::LbOptions& opts) {
    mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4));
    std::vector<lb::LbDecision> decisions(4);
    cluster.run([&](mp::Process& p) {
      decisions[static_cast<std::size_t>(p.rank())] =
          lb::load_balance_check(p, part, p.rank() == 0 ? 0.03 : 0.01, opts);
    });
    return decisions;
  };
  const auto a = run(central);
  const auto b = run(distributed);
  ASSERT_TRUE(a[0].remap);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(a[static_cast<std::size_t>(r)].remap, b[static_cast<std::size_t>(r)].remap);
    EXPECT_TRUE(a[static_cast<std::size_t>(r)].new_partition ==
                b[static_cast<std::size_t>(r)].new_partition);
  }
  // All ranks agree among themselves too.
  for (int r = 1; r < 4; ++r) {
    EXPECT_TRUE(b[0].new_partition == b[static_cast<std::size_t>(r)].new_partition);
  }
}

TEST(DistributedLb, ScalesBetterThanCentralized) {
  const auto part = IntervalPartition::from_weights(10000, std::vector<double>(12, 1.0));
  auto cost = [&](lb::LbStrategy strategy) {
    mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(12));
    lb::LbOptions opts;
    opts.strategy = strategy;
    cluster.run([&](mp::Process& p) {
      (void)lb::load_balance_check(p, part, 0.01, opts);
    });
    return cluster.makespan();
  };
  // Centralized: p-1 serial receives + p-1 sends. Distributed: one
  // log-tree allgather.
  EXPECT_LT(cost(lb::LbStrategy::kDistributed), cost(lb::LbStrategy::kCentralized));
}

// --- per-vertex work in the executor ----------------------------------------------

TEST(VertexWork, ScalesChargedTime) {
  const auto g = graph::grid_2d_tri(10, 10);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1.0});
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    const auto ir = sched::build_schedule(p, g, part, sched::BuildMethod::kSort2,
                                          sim::CpuCostModel::free());
    exec::IrregularLoop loop(ir.lgraph, ir.schedule, exec::LoopCostModel{1e-5, 0.0});
    const double uniform = loop.work_per_iteration();
    loop.set_vertex_work(std::vector<double>(100, 3.0));
    EXPECT_NEAR(loop.work_per_iteration(), 3.0 * uniform, 1e-12);
    loop.set_vertex_work({});
    EXPECT_NEAR(loop.work_per_iteration(), uniform, 1e-12);
  });
}

TEST(VertexWork, DoesNotChangeResults) {
  const auto g = graph::random_delaunay(300, 8);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1});
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  std::vector<std::vector<double>> with(2), without(2);
  for (const bool weighted : {false, true}) {
    cluster.reset_clocks();
    cluster.run([&](mp::Process& p) {
      const auto ir = sched::build_schedule(p, g, part, sched::BuildMethod::kSort2,
                                            sim::CpuCostModel::free());
      exec::IrregularLoop loop(ir.lgraph, ir.schedule, exec::LoopCostModel{1e-6, 1e-6});
      if (weighted) {
        std::vector<double> w(static_cast<std::size_t>(ir.schedule.nlocal), 2.5);
        loop.set_vertex_work(std::move(w));
      }
      std::vector<double> y(static_cast<std::size_t>(ir.schedule.nlocal), 1.5);
      loop.iterate(p, y, 10);
      (weighted ? with : without)[static_cast<std::size_t>(p.rank())] = std::move(y);
    });
  }
  EXPECT_EQ(with, without);  // multipliers change time, never values
}

TEST(VertexWork, Validation) {
  const auto g = graph::grid_2d_tri(4, 4);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1.0});
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    const auto ir = sched::build_schedule(p, g, part, sched::BuildMethod::kSort2,
                                          sim::CpuCostModel::free());
    exec::IrregularLoop loop(ir.lgraph, ir.schedule);
    EXPECT_THROW(loop.set_vertex_work(std::vector<double>(3, 1.0)),
                 std::invalid_argument);
    EXPECT_THROW(loop.set_vertex_work(std::vector<double>(16, -1.0)),
                 std::invalid_argument);
  });
}

// --- predictors inside the adaptive executor ---------------------------------------

TEST(PredictorIntegration, EmaAvoidsChasingAnOscillatingLoad) {
  // A load that flips faster than the check interval: the kLast predictor
  // keeps remapping after every flip; kEma converges to the average and
  // stops remapping. EMA must remap at most as often.
  const auto g = graph::random_delaunay(2500, 13);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1, 1});
  auto remaps = [&](lb::PredictorKind kind, double alpha) {
    mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(3));
    cluster.set_profile(0, sim::LoadProfile::periodic(0.6, 0.5, 1.0 / 3.0, 1.0));
    lb::AdaptiveOptions opts;
    opts.lb.objective = partition::ArrangementObjective::from_network(
        cluster.spec().net, sizeof(double));
    opts.cpu = sim::CpuCostModel::sun4();
    opts.loop = exec::LoopCostModel{2e-6, 2e-6};
    opts.predictor = kind;
    opts.ema_alpha = alpha;
    std::vector<int> counts(3);
    cluster.run([&](mp::Process& p) {
      lb::AdaptiveExecutor ax(p, g, part, opts);
      std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())),
                            1.0);
      counts[static_cast<std::size_t>(p.rank())] = ax.run(p, y, 120).remaps;
    });
    return counts[0];
  };
  const int last = remaps(lb::PredictorKind::kLast, 0.5);
  const int ema = remaps(lb::PredictorKind::kEma, 0.15);
  EXPECT_LE(ema, last);
}

}  // namespace
}  // namespace stance
