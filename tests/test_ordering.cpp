// Tests for the Phase-A orderings: every method must produce a permutation,
// be deterministic, and the locality-aware methods must beat the random
// baseline on contiguous-partition edge cut (the paper's §3.1 property).
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/metrics.hpp"
#include "order/ordering.hpp"
#include "order/quality.hpp"

namespace stance::order {
namespace {

using graph::Csr;
using graph::EdgeIndex;

const Csr& test_mesh() {
  static const Csr g = graph::random_delaunay(600, 42);
  return g;
}

// --- basic helpers -----------------------------------------------------------

TEST(Invert, RoundTrips) {
  const std::vector<Vertex> perm{2, 0, 3, 1};
  const auto inv = invert(perm);
  EXPECT_EQ(inv, (std::vector<Vertex>{1, 3, 0, 2}));
  EXPECT_EQ(invert(inv), perm);
}

TEST(IsPermutation, DetectsDefects) {
  EXPECT_TRUE(is_permutation(std::vector<Vertex>{0, 1, 2}));
  EXPECT_FALSE(is_permutation(std::vector<Vertex>{0, 0, 2}));
  EXPECT_FALSE(is_permutation(std::vector<Vertex>{0, 1, 3}));
  EXPECT_FALSE(is_permutation(std::vector<Vertex>{-1, 0, 1}));
  EXPECT_TRUE(is_permutation(std::vector<Vertex>{}));
}

TEST(IdentityOrder, IsIdentity) {
  const auto p = identity_order(5);
  for (Vertex i = 0; i < 5; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
}

TEST(MethodName, AllNamed) {
  for (const Method m : all_methods()) EXPECT_NE(method_name(m), "?");
}

// --- every method yields a valid deterministic permutation -------------------

class OrderingMethod : public ::testing::TestWithParam<Method> {};

TEST_P(OrderingMethod, ProducesPermutation) {
  const auto perm = compute(test_mesh(), GetParam(), 7);
  EXPECT_EQ(perm.size(), static_cast<std::size_t>(test_mesh().num_vertices()));
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(OrderingMethod, DeterministicForSeed) {
  const auto a = compute(test_mesh(), GetParam(), 7);
  const auto b = compute(test_mesh(), GetParam(), 7);
  EXPECT_EQ(a, b);
}

TEST_P(OrderingMethod, WorksOnTriangulatedGrid) {
  const Csr g = graph::grid_2d_tri(12, 12);
  const auto perm = compute(g, GetParam(), 3);
  EXPECT_TRUE(is_permutation(perm));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, OrderingMethod,
                         ::testing::ValuesIn(all_methods().begin(), all_methods().end()),
                         [](const auto& info) {
                           std::string n = method_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- locality quality ---------------------------------------------------------

EdgeIndex cut_at(const Csr& g, const std::vector<Vertex>& perm, int parts) {
  const Csr pg = g.permuted(perm);
  const std::vector<int> procs{parts};
  return graph::cut_profile(pg, procs)[0];
}

class LocalityMethod : public ::testing::TestWithParam<Method> {};

TEST_P(LocalityMethod, BeatsRandomBaselineOnMesh) {
  const Csr& g = test_mesh();
  const auto perm = compute(g, GetParam(), 7);
  const auto rnd = random_order(g.num_vertices(), 99);
  for (const int parts : {2, 4, 8}) {
    EXPECT_LT(cut_at(g, perm, parts), cut_at(g, rnd, parts) / 2)
        << method_name(GetParam()) << " at p=" << parts;
  }
}

TEST_P(LocalityMethod, GoodForAWideRangeOfPartitions) {
  // The paper's §3.1 claim: one transformation serves many processor counts.
  // Sanity bound: cut at p parts stays under c * sqrt(n * p) for meshes.
  const Csr& g = test_mesh();
  const auto perm = compute(g, GetParam(), 7);
  const double n = static_cast<double>(g.num_vertices());
  for (const int parts : {2, 3, 5, 8, 16}) {
    // A random order cuts ~E*(1-1/p) edges (~1400+ here); locality-aware
    // orders stay within a multiple of the sqrt(n*p) mesh-cut scaling.
    const double bound = 12.0 * std::sqrt(n * parts);
    EXPECT_LT(static_cast<double>(cut_at(g, perm, parts)), bound)
        << method_name(GetParam()) << " at p=" << parts;
  }
}

INSTANTIATE_TEST_SUITE_P(GeometricAndSpectral, LocalityMethod,
                         ::testing::Values(Method::kRcb, Method::kInertial,
                                           Method::kMorton, Method::kHilbert,
                                           Method::kSpectral, Method::kCuthillMckee),
                         [](const auto& info) {
                           std::string n = method_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- method-specific behaviour -------------------------------------------------

TEST(RcbOrder, SplitsAlongLongAxisFirst) {
  // Points strung along x: RCB order must follow x order.
  std::vector<graph::Point2> pts;
  for (int i = 0; i < 16; ++i) pts.push_back({static_cast<double>(i), 0.1});
  const auto perm = rcb_order(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(perm[i], static_cast<Vertex>(i));
  }
}

TEST(HilbertOrder, NeighborsOnCurveAreClose) {
  // Hilbert's defining property vs Morton: consecutive curve positions are
  // adjacent grid cells. Check mean jump distance is small.
  const auto pts = graph::random_points(2000, 5);
  const auto perm = hilbert_order(pts);
  const auto pos_to_vertex = invert(perm);
  double total = 0.0;
  for (std::size_t i = 1; i < pos_to_vertex.size(); ++i) {
    total += dist(pts[static_cast<std::size_t>(pos_to_vertex[i - 1])],
                  pts[static_cast<std::size_t>(pos_to_vertex[i])]);
  }
  const double mean_jump = total / static_cast<double>(pos_to_vertex.size() - 1);
  EXPECT_LT(mean_jump, 0.08);  // ~sqrt(1/2000)=0.022 ideal; generous bound
}

TEST(CuthillMckee, ReducesBandwidthOnGrid) {
  // Row-major grid has bandwidth nx; RCM should not exceed it and must
  // crush the bandwidth of a randomly permuted version.
  const Csr g = graph::grid_2d(20, 20);
  const auto rnd = random_order(g.num_vertices(), 3);
  const Csr shuffled = g.permuted(rnd);
  const auto rcm = cuthill_mckee_order(shuffled);
  EXPECT_LE(graph::bandwidth(shuffled.permuted(rcm)), 2 * 20);
  EXPECT_GT(graph::bandwidth(shuffled), 100);
}

TEST(CuthillMckee, HandlesDisconnectedGraphs) {
  const Csr g = Csr::from_edges(
      6, std::vector<graph::Edge>{{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto perm = cuthill_mckee_order(g);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(SpectralOrder, SplitsDumbbellAtTheBridge) {
  // Two dense cliques joined by one edge: the Fiedler split must separate
  // the cliques, so a 2-way contiguous cut of the ordering cuts ~1 edge.
  std::vector<graph::Edge> edges;
  for (Vertex i = 0; i < 8; ++i) {
    for (Vertex j = static_cast<Vertex>(i + 1); j < 8; ++j) {
      edges.push_back({i, j});          // clique A: 0..7
      edges.push_back({static_cast<Vertex>(i + 8), static_cast<Vertex>(j + 8)});
    }
  }
  edges.push_back({7, 8});  // bridge
  const Csr g = Csr::from_edges(16, edges);
  const auto perm = spectral_order(g);
  EXPECT_TRUE(is_permutation(perm));
  EXPECT_LE(cut_at(g, perm, 2), 2);
}

TEST(SpectralOrder, OptionsValidated) {
  SpectralOptions bad;
  bad.leaf_size = 1;
  EXPECT_THROW(spectral_order(test_mesh(), bad), std::invalid_argument);
  bad = SpectralOptions{};
  bad.lanczos_steps = 0;
  EXPECT_THROW(spectral_order(test_mesh(), bad), std::invalid_argument);
}

TEST(ComputeDispatch, CoordlessGraphRejectsGeometricMethods) {
  const Csr g = Csr::from_edges(4, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}});
  EXPECT_THROW(compute(g, Method::kRcb), std::invalid_argument);
  EXPECT_THROW(compute(g, Method::kHilbert), std::invalid_argument);
  // Edge-based methods are fine.
  EXPECT_TRUE(is_permutation(compute(g, Method::kCuthillMckee)));
  EXPECT_TRUE(is_permutation(compute(g, Method::kSpectral)));
}

TEST(CompareOrderings, SkipsGeometricWithoutCoords) {
  const Csr g = Csr::from_edges(4, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}});
  const std::vector<int> procs{2};
  const auto reports = compare_orderings(g, all_methods(), procs);
  // identity, random, spectral, cuthill-mckee survive.
  EXPECT_EQ(reports.size(), 4u);
}

TEST(EvaluateOrdering, ReportsCutsPerProcCount) {
  const Csr& g = test_mesh();
  const auto perm = compute(g, Method::kHilbert);
  const std::vector<int> procs{1, 2, 4};
  const auto r = evaluate_ordering(g, perm, Method::kHilbert, procs);
  ASSERT_EQ(r.cuts.size(), 3u);
  EXPECT_EQ(r.cuts[0], 0);
  EXPECT_GT(r.bandwidth, 0);
  EXPECT_GT(r.avg_edge_span, 0.0);
}

}  // namespace
}  // namespace stance::order
