// Integration tests for the Session facade and the paper §4 metrics —
// end-to-end pipeline runs at reduced scale.
#include <gtest/gtest.h>

#include "stance/stance.hpp"

namespace stance {
namespace {

SessionConfig small_config(std::size_t nprocs) {
  SessionConfig cfg;
  cfg.machine = sim::MachineSpec::sun4_ethernet(nprocs);
  cfg.ordering = order::Method::kHilbert;  // fast; spectral tested elsewhere
  cfg.build = sched::BuildMethod::kSort2;
  return cfg;
}

graph::Csr small_mesh() { return graph::random_delaunay(1500, 21); }

// --- metrics -------------------------------------------------------------------

TEST(Metrics, EfficiencyUniformClusterMatchesClassic) {
  // 4 equal nodes, perfect speedup: E = 1.
  const std::vector<double> t_individual{100.0, 100.0, 100.0, 100.0};
  EXPECT_NEAR(nonuniform_efficiency(25.0, t_individual), 1.0, 1e-12);
  EXPECT_NEAR(nonuniform_efficiency(50.0, t_individual), 0.5, 1e-12);
}

TEST(Metrics, EfficiencyHeterogeneousCluster) {
  // Nodes of rate 1/100 and 1/50: combined rate 0.03; perfect time 33.33.
  const std::vector<double> t_individual{100.0, 50.0};
  EXPECT_NEAR(nonuniform_efficiency(100.0 / 3.0, t_individual), 1.0, 1e-12);
}

TEST(Metrics, EfficiencyValidation) {
  EXPECT_THROW((void)nonuniform_efficiency(0.0, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)nonuniform_efficiency(1.0, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)nonuniform_efficiency(1.0, std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Metrics, SpeedupVsBest) {
  const std::vector<double> t{120.0, 80.0, 100.0};
  EXPECT_DOUBLE_EQ(speedup_vs_best(40.0, t), 2.0);
}

// --- static runs -----------------------------------------------------------------

TEST(Session, StaticRunProducesSensibleNumbers) {
  Session s(small_mesh(), small_config(3));
  const auto r = s.run_static(20);
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.loop_seconds, 0.0);
  EXPECT_GT(r.efficiency, 0.3);
  EXPECT_LE(r.efficiency, 1.0);
  EXPECT_EQ(r.finish_times.size(), 3u);
  EXPECT_GT(r.loop_stats.messages_sent, 0u);
}

TEST(Session, StaticRunIsDeterministic) {
  const auto mesh = small_mesh();
  Session a(mesh, small_config(4));
  Session b(mesh, small_config(4));
  const auto ra = a.run_static(15);
  const auto rb = b.run_static(15);
  EXPECT_EQ(ra.loop_seconds, rb.loop_seconds);
  EXPECT_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.build_seconds, rb.build_seconds);
}

TEST(Session, MoreWorkstationsReduceLoopTime) {
  const auto mesh = small_mesh();
  double prev = 1e300;
  for (const std::size_t n : {1u, 3u, 5u}) {
    Session s(mesh, small_config(n));
    const auto r = s.run_static(20);
    EXPECT_LT(r.loop_seconds, prev) << n << " workstations";
    prev = r.loop_seconds;
  }
}

TEST(Session, EfficiencyDeclinesWithClusterSize) {
  const auto mesh = small_mesh();
  Session s1(mesh, small_config(1));
  Session s5(mesh, small_config(5));
  const auto r1 = s1.run_static(20);
  const auto r5 = s5.run_static(20);
  EXPECT_NEAR(r1.efficiency, 1.0, 0.05);
  EXPECT_LT(r5.efficiency, r1.efficiency);
}

TEST(Session, WeightedRunRespectsWeights) {
  Session s(small_mesh(), small_config(2));
  // Grossly unbalanced weights hurt: the overloaded node dominates. (The
  // ratio is compressed below the 1.8x compute skew by the per-iteration
  // communication latency both variants pay.)
  const auto balanced = s.run_static_weighted(10, {1.0, 1.0});
  const auto skewed = s.run_static_weighted(10, {9.0, 1.0});
  EXPECT_GT(skewed.loop_seconds, 1.2 * balanced.loop_seconds);
}

TEST(Session, SequentialTimesScaleWithSpeed) {
  SessionConfig cfg = small_config(2);
  cfg.machine.nodes[1].speed = 0.5;
  Session s(small_mesh(), cfg);
  const auto t = s.sequential_times(10);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NEAR(t[1], 2.0 * t[0], 1e-9);
}

TEST(Session, VerifyAgainstReferenceIsExact) {
  Session s(small_mesh(), small_config(4));
  EXPECT_EQ(s.verify_against_reference(25), 0.0);
}

TEST(Session, AllOrderingsRunTheFullPipeline) {
  const auto mesh = graph::random_delaunay(800, 3);
  for (const auto m : order::all_methods()) {
    SessionConfig cfg = small_config(3);
    cfg.ordering = m;
    Session s(mesh, cfg);
    EXPECT_EQ(s.verify_against_reference(5), 0.0) << order::method_name(m);
  }
}

TEST(Session, AllBuildersRunTheFullPipeline) {
  const auto mesh = graph::random_delaunay(800, 4);
  for (const auto b : {sched::BuildMethod::kSimple, sched::BuildMethod::kSort1,
                       sched::BuildMethod::kSort2}) {
    SessionConfig cfg = small_config(3);
    cfg.build = b;
    Session s(mesh, cfg);
    EXPECT_EQ(s.verify_against_reference(5), 0.0) << sched::build_method_name(b);
  }
}

// --- adaptive runs ----------------------------------------------------------------

lb::LbOptions test_lb_options() {
  lb::LbOptions lb;
  lb.check_interval = 10;
  lb.objective = partition::ArrangementObjective::from_network(
      sim::NetworkModel::ethernet_10mbps(), sizeof(double));
  return lb;
}

TEST(Session, AdaptiveWithLbBeatsWithout) {
  const auto mesh = small_mesh();
  SessionConfig cfg = small_config(3);
  Session s(mesh, cfg);
  s.cluster().set_profile(0, sim::LoadProfile::competing_jobs(2));
  const auto with = s.run_adaptive(100, test_lb_options(), true);
  const auto without = s.run_adaptive(100, test_lb_options(), false);
  EXPECT_GE(with.remaps, 1);
  EXPECT_EQ(without.remaps, 0);
  EXPECT_LT(with.loop_seconds, without.loop_seconds);
  // The two runs compute the same values regardless of load balancing; the
  // checksum regroups per-rank partial sums, so allow FP reassociation noise.
  EXPECT_NEAR(with.checksum, without.checksum, 1e-9 * std::abs(without.checksum));
}

TEST(Session, AdaptiveCheckCostOrderOfMagnitudeBelowRemap) {
  // Paper Table 5: per-check cost is ~an order of magnitude below the remap
  // cost. The ratio is driven by the mesh size (a remap redistributes data
  // and rebuilds the schedule), so use a mesh big enough to see it.
  const auto mesh = graph::random_delaunay(8000, 22);
  Session s(mesh, small_config(4));
  s.cluster().set_profile(1, sim::LoadProfile::competing_jobs(2));
  const auto r = s.run_adaptive(100, test_lb_options(), true);
  ASSERT_GE(r.remaps, 1);
  const double per_check = r.check_seconds / static_cast<double>(r.checks);
  const double per_remap = r.remap_seconds / static_cast<double>(r.remaps);
  EXPECT_LT(per_check, per_remap / 4.0);
}

TEST(Session, AdaptiveNoLoadNoRemap) {
  Session s(small_mesh(), small_config(3));
  const auto r = s.run_adaptive(60, test_lb_options(), true);
  EXPECT_EQ(r.remaps, 0);
  EXPECT_GT(r.checks, 0);
}

}  // namespace
}  // namespace stance
