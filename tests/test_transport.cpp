// Transport conformance suite (ISSUE 6): every backend must deliver the
// same bytes in the same per-(source, tag) order and — because Process owns
// all clock charging — produce bit-identical virtual times. The suite runs
// each behavioral contract against the virtual oracle, the shared-memory
// ring backend, and the TCP backend, plus TCP-only failure-injection tests
// (malformed wire frames must surface as recoverable mp::TransportError)
// and ShmRing lifecycle unit tests (sticky shutdown/poison until reset).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/gather_scatter.hpp"
#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "mp/errors.hpp"
#include "mp/shm_ring.hpp"
#include "mp/transport_tcp.hpp"
#include "sched/coalesce.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using mp::TransportKind;

std::string kind_name(const ::testing::TestParamInfo<TransportKind>& info) {
  switch (info.param) {
    case TransportKind::kVirtual: return "virtual";
    case TransportKind::kShm: return "shm";
    case TransportKind::kTcp: return "tcp";
    default: return "default";
  }
}

/// 4 ranks on 2 nodes: ranks 0,1 co-resident, ranks 2,3 co-resident —
/// every test exercises both the intra-node and the inter-node path.
mp::Cluster make_cluster(TransportKind kind, int nprocs = 4, int per_node = 2) {
  return mp::Cluster(sim::MachineSpec::uniform(static_cast<std::size_t>(nprocs)),
                     mp::NodeMap::contiguous(nprocs, per_node), kind);
}

class TransportConformance : public ::testing::TestWithParam<TransportKind> {};

TEST_P(TransportConformance, PointToPointFifoPerSourceAndTag) {
  // Ranks 0 and 1 both stream interleaved tag-1/tag-2 sequences at rank 2
  // (inter-node for both on the 2x2 layout); rank 2 drains them in an order
  // that only works if matching is exact per (source, tag) and FIFO within
  // each pair.
  constexpr int kMsgs = 32;
  auto cluster = make_cluster(GetParam());
  cluster.run([&](mp::Process& p) {
    if (p.rank() == 0 || p.rank() == 1) {
      for (int i = 0; i < kMsgs; ++i) {
        p.send_value(2, /*tag=*/1 + (i % 2), p.rank() * 1000 + i);
      }
    }
    if (p.rank() == 2) {
      for (const mp::Rank src : {0, 1}) {
        // Drain tag 2 first even though tag 1 arrived first: matching must
        // not be confused by older non-matching messages in the lane.
        for (int i = 1; i < kMsgs; i += 2) {
          EXPECT_EQ(p.recv_value<int>(src, 2), src * 1000 + i) << "src " << src;
        }
        for (int i = 0; i < kMsgs; i += 2) {
          EXPECT_EQ(p.recv_value<int>(src, 1), src * 1000 + i) << "src " << src;
        }
      }
    }
  });
}

TEST_P(TransportConformance, IntraNodePairObeysFifoToo) {
  auto cluster = make_cluster(GetParam());
  cluster.run([&](mp::Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 16; ++i) p.send_value(1, 7, i);
    }
    if (p.rank() == 1) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(p.recv_value<int>(0, 7), i);
    }
  });
}

TEST_P(TransportConformance, CollectivesDeliverEveryContribution) {
  auto cluster = make_cluster(GetParam());
  cluster.run([&](mp::Process& p) {
    p.barrier();
    std::vector<int> data{p.is_root() ? 77 : 0};
    p.bcast(0, data);
    EXPECT_EQ(data[0], 77);
    const auto all = p.allgather(p.rank());
    for (int r = 0; r < p.nprocs(); ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
    EXPECT_DOUBLE_EQ(p.allreduce_sum(1.0), 4.0);
    const auto sizes = p.allgatherv(std::span<const int>(all.data(),
                                                         static_cast<std::size_t>(
                                                             p.rank() + 1)));
    for (int r = 0; r < p.nprocs(); ++r) {
      EXPECT_EQ(sizes[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
    }
  });
}

TEST_P(TransportConformance, MulticastReachesEveryDestination) {
  auto cluster = make_cluster(GetParam());
  cluster.run([&](mp::Process& p) {
    const std::vector<mp::Rank> dests{1, 2, 3};
    const std::vector<int> payload{5, 6, 7};
    if (p.rank() == 0) {
      p.multicast(dests, /*tag=*/9, payload);
    } else {
      EXPECT_EQ(p.recv<int>(0, 9), payload);
    }
  });
}

TEST_P(TransportConformance, AlltoallvMatchesAcrossBackends) {
  auto cluster = make_cluster(GetParam());
  cluster.run([&](mp::Process& p) {
    std::vector<std::vector<int>> outgoing(4);
    for (int r = 0; r < 4; ++r) {
      outgoing[static_cast<std::size_t>(r)] = {p.rank() * 10 + r};
    }
    const auto incoming = p.alltoallv(outgoing);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(incoming[static_cast<std::size_t>(r)].size(), 1u);
      EXPECT_EQ(incoming[static_cast<std::size_t>(r)][0], r * 10 + p.rank());
    }
  });
}

TEST_P(TransportConformance, ShutdownWhileBlockedReleasesAndClusterStaysUsable) {
  auto cluster = make_cluster(GetParam());
  EXPECT_THROW(
      cluster.run([](mp::Process& p) {
        if (p.rank() == 0) throw std::invalid_argument("injected failure");
        (void)p.recv_raw(0, /*tag=*/99);  // would block forever
      }),
      std::invalid_argument);
  // The abort path resets the transport: the same cluster must run again.
  cluster.run([](mp::Process& p) {
    if (p.rank() == 0) p.send_value(3, 5, 123);
    if (p.rank() == 3) EXPECT_EQ(p.recv_value<int>(0, 5), 123);
  });
}

// --- the oracle: byte- and virtual-time-equivalence vs the virtual backend --

struct ExchangeResult {
  std::vector<std::vector<double>> ghost;
  std::vector<std::vector<double>> local;
  std::vector<double> finish_times;
};

/// The coalesced gather/scatter exchange from the executor suite, run on
/// `kind`. Coalesced frames are the transport's hardest traffic: tag-
/// transformed, delegate-routed, mixing intra-node forwards with inter-node
/// frames.
ExchangeResult run_coalesced_exchange(TransportKind kind,
                                      const std::vector<sched::InspectorResult>& results) {
  constexpr int kRanks = 4;
  mp::Cluster cluster(sim::MachineSpec::uniform(kRanks),
                      mp::NodeMap::contiguous(kRanks, 2), kind);
  std::vector<sched::CoalescePlan> plans(kRanks);
  cluster.run([&](mp::Process& p) {
    plans[static_cast<std::size_t>(p.rank())] = sched::coalesce(
        p, results[static_cast<std::size_t>(p.rank())].schedule,
        sim::CpuCostModel::free());
  });

  ExchangeResult out;
  out.ghost.resize(kRanks);
  out.local.resize(kRanks);
  std::vector<exec::ExecWorkspace> ws(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    const auto& s = results[r].schedule;
    out.local[r] = test::seeded_values(static_cast<std::size_t>(s.nlocal), 42 + r);
    out.ghost[r].assign(static_cast<std::size_t>(s.nghost), 0.0);
  }
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& s = results[r].schedule;
    for (int it = 0; it < 3; ++it) {
      exec::gather_coalesced<double>(p, s, plans[r], out.local[r],
                                     std::span<double>(out.ghost[r]), ws[r]);
      exec::scatter_add_coalesced<double>(p, s, plans[r], out.ghost[r],
                                          std::span<double>(out.local[r]), ws[r]);
    }
  });
  out.finish_times = cluster.finish_times();
  return out;
}

TEST_P(TransportConformance, CoalescedExchangeIsByteIdenticalToVirtualOracle) {
  Rng rng(2026);
  const graph::Csr g = graph::random_delaunay(900, 2026);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto results = test::build_all_schedules(g, part);

  const ExchangeResult oracle = run_coalesced_exchange(TransportKind::kVirtual, results);
  const ExchangeResult mine = run_coalesced_exchange(GetParam(), results);

  for (std::size_t r = 0; r < 4; ++r) {
    test::expect_vectors_eq(mine.ghost[r], oracle.ghost[r]);
    test::expect_vectors_eq(mine.local[r], oracle.local[r]);
    // Virtual times are charged by Process, not the transport: they must be
    // bit-identical, not merely close.
    EXPECT_EQ(mine.finish_times[r], oracle.finish_times[r]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportConformance,
                         ::testing::Values(TransportKind::kVirtual,
                                           TransportKind::kShm,
                                           TransportKind::kTcp),
                         kind_name);

// --- TCP-only: untrusted-wire failure paths ---------------------------------

TEST(TcpTransport, MalformedWireFrameSurfacesAsAttributedTransportError) {
  // A peer that writes garbage on the wire must produce a recoverable
  // mp::TransportError in the blocked receiver — never a process abort —
  // and the error must attribute the failing entity: a desynced byte
  // stream names the peer *node* (no rank can be recovered from garbage).
  auto cluster = make_cluster(TransportKind::kTcp);
  auto* tcp = dynamic_cast<mp::TcpTransport*>(&cluster.transport());
  ASSERT_NE(tcp, nullptr);
  try {
    cluster.run([&](mp::Process& p) {
      if (p.rank() == 0) {
        std::vector<std::byte> junk(64, std::byte{0xA5});
        tcp->corrupt_wire(/*from_node=*/0, /*to_node=*/1, junk);
      }
      if (p.rank() == 2) {
        (void)p.recv_raw(0, /*tag=*/1);  // blocked on the poisoned wire
      }
    });
    FAIL() << "garbage on the wire went unnoticed";
  } catch (const mp::TransportError& e) {
    EXPECT_EQ(e.peer(), -1);  // a rank cannot be recovered from garbage
    EXPECT_EQ(e.peer_node(), 0);
    EXPECT_EQ(e.cause(), mp::FailCause::kMalformedFrame);
  }
}

TEST(TcpTransport, SizeMismatchedFrameIsRecoverableOnUntrustedWire) {
  // recv_into's shape check is an assertion on trusted backends; on TCP the
  // bytes crossed a real wire, so the same mismatch must throw — attributing
  // the sending rank, which recv_into knows exactly.
  auto cluster = make_cluster(TransportKind::kTcp);
  try {
    cluster.run([](mp::Process& p) {
      if (p.rank() == 0) {
        const std::vector<int> three{1, 2, 3};
        p.send(2, /*tag=*/4, three);
      }
      if (p.rank() == 2) {
        std::vector<int> two(2);
        p.recv_into(0, /*tag=*/4, std::span<int>(two));
      }
    });
    FAIL() << "size mismatch went unnoticed";
  } catch (const mp::TransportError& e) {
    EXPECT_EQ(e.peer(), 0);
    EXPECT_EQ(e.peer_node(), 0);
    EXPECT_EQ(e.cause(), mp::FailCause::kPayloadMismatch);
  }
}

TEST(TcpTransport, SingleNodeMapNeedsNoSockets) {
  // All ranks co-resident: the TCP backend degrades to pure shared-memory
  // rings and must work without opening a single socket.
  mp::Cluster cluster(sim::MachineSpec::uniform(3),
                      mp::NodeMap::contiguous(3, 3), TransportKind::kTcp);
  cluster.run([](mp::Process& p) {
    if (p.rank() == 0) p.send_value(2, 1, 11);
    if (p.rank() == 2) EXPECT_EQ(p.recv_value<int>(0, 1), 11);
    p.barrier();
  });
}

TEST(TransportFactory, EnvSelectionAndValidation) {
  // Concrete kinds pass through resolve unchanged.
  EXPECT_EQ(mp::resolve_transport_kind(TransportKind::kTcp), TransportKind::kTcp);
  EXPECT_EQ(mp::resolve_transport_kind(TransportKind::kShm), TransportKind::kShm);
  // kDefault honors STANCE_TRANSPORT (and falls back to virtual when unset).
  const char* old = std::getenv("STANCE_TRANSPORT");
  const std::string saved = old ? old : "";
  ::setenv("STANCE_TRANSPORT", "shm", 1);
  EXPECT_EQ(mp::resolve_transport_kind(TransportKind::kDefault), TransportKind::kShm);
  ::setenv("STANCE_TRANSPORT", "bogus", 1);
  EXPECT_THROW((void)mp::resolve_transport_kind(TransportKind::kDefault),
               std::invalid_argument);
  ::unsetenv("STANCE_TRANSPORT");
  EXPECT_EQ(mp::resolve_transport_kind(TransportKind::kDefault),
            TransportKind::kVirtual);
  if (old) ::setenv("STANCE_TRANSPORT", saved.c_str(), 1);
}

// --- ShmRing lifecycle unit tests -------------------------------------------

mp::RawMessage ring_msg(mp::Rank src, mp::Tag tag, int value) {
  std::vector<int> v{value};
  return mp::RawMessage{src, tag, mp::to_bytes(std::span<const int>(v)), 0.0};
}

TEST(ShmRing, PerSourceFifoWithInterleavedTags) {
  mp::ShmRing ring(3);
  ring.deposit(ring_msg(1, 5, 10));
  ring.deposit(ring_msg(2, 5, 20));
  ring.deposit(ring_msg(1, 6, 11));
  ring.deposit(ring_msg(1, 5, 12));
  EXPECT_EQ(mp::from_bytes<int>(ring.take(1, 6).payload)[0], 11);
  EXPECT_EQ(mp::from_bytes<int>(ring.take(1, 5).payload)[0], 10);
  EXPECT_EQ(mp::from_bytes<int>(ring.take(1, 5).payload)[0], 12);
  EXPECT_EQ(mp::from_bytes<int>(ring.take(2, 5).payload)[0], 20);
  EXPECT_EQ(ring.pending(), 0u);
}

TEST(ShmRing, ShutdownIsStickyAcrossClearUntilReset) {
  mp::ShmRing ring(2);
  ring.shutdown();
  ring.clear();
  ring.deposit(ring_msg(1, 1, 1));  // dropped: still down
  EXPECT_EQ(ring.pending(), 0u);
  EXPECT_THROW((void)ring.take(1, 1), mp::ClusterAborted);
  ring.reset();
  ring.deposit(ring_msg(1, 1, 2));
  EXPECT_EQ(mp::from_bytes<int>(ring.take(1, 1).payload)[0], 2);
}

TEST(ShmRing, PoisonReleasesBlockedTakerWithTransportError) {
  mp::ShmRing ring(2);
  std::atomic<bool> got_error{false};
  std::thread taker([&] {
    try {
      (void)ring.take(0, 1);
    } catch (const mp::TransportError& e) {
      got_error = std::string(e.what()).find("bad wire") != std::string::npos;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.poison("bad wire");
  taker.join();
  EXPECT_TRUE(got_error.load());
  // Sticky across clear, revived by reset — and the first poison wins.
  ring.poison("second reason");
  ring.clear();
  EXPECT_THROW((void)ring.take(0, 1), mp::TransportError);
  ring.reset();
  ring.deposit(ring_msg(0, 1, 3));
  EXPECT_EQ(mp::from_bytes<int>(ring.take(0, 1).payload)[0], 3);
}

TEST(ShmRing, PoolPrefillAndRecycleRoundTrip) {
  mp::ShmRing ring(2);
  EXPECT_TRUE(ring.prefill(4, 64));
  auto buffer = ring.acquire(64);
  EXPECT_EQ(buffer.size(), 64u);
  ring.recycle(std::move(buffer));
  EXPECT_FALSE(ring.prefill(100000, 8));  // cap reported, not silently granted
}

}  // namespace
}  // namespace stance
