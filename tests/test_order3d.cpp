// Tests for the 3-D orderings, generators, and Chaco I/O.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/builders.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "order/order3d.hpp"
#include "order/ordering.hpp"

namespace stance::order {
namespace {

using graph::Csr;
using graph::Point3;

std::vector<Point3> cloud(graph::Vertex n, std::uint64_t seed) {
  return graph::random_points_3d(n, seed);
}

using Order3Fn = std::vector<Vertex> (*)(std::span<const Point3>);

struct NamedFn {
  const char* name;
  Order3Fn fn;
};

class Order3Method : public ::testing::TestWithParam<NamedFn> {};

TEST_P(Order3Method, ProducesPermutation) {
  const auto pts = cloud(500, 3);
  const auto perm = GetParam().fn(pts);
  EXPECT_EQ(perm.size(), pts.size());
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(Order3Method, Deterministic) {
  const auto pts = cloud(300, 5);
  EXPECT_EQ(GetParam().fn(pts), GetParam().fn(pts));
}

TEST_P(Order3Method, PreservesLocalityOnGeometricGraph) {
  std::vector<Point3> pts;
  const Csr g = graph::random_geometric_3d(800, 0.14, 7, &pts);
  const auto perm = GetParam().fn(pts);
  const auto rnd = random_order(g.num_vertices(), 99);
  const std::vector<int> procs{4};
  const auto cut = graph::cut_profile(g.permuted(perm), procs)[0];
  const auto rnd_cut = graph::cut_profile(g.permuted(rnd), procs)[0];
  EXPECT_LT(cut, rnd_cut / 2) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(All, Order3Method,
                         ::testing::Values(NamedFn{"rcb3", &rcb3_order},
                                           NamedFn{"inertial3", &inertial3_order},
                                           NamedFn{"morton3", &morton3_order},
                                           NamedFn{"hilbert3", &hilbert3_order}),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(Rcb3, LineOfPointsOrderedAlongIt) {
  std::vector<Point3> pts;
  for (int i = 0; i < 32; ++i) {
    pts.push_back({static_cast<double>(i), 0.0, 0.0});
  }
  const auto perm = rcb3_order(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(perm[i], static_cast<Vertex>(i));
  }
}

TEST(Hilbert3, ConsecutiveCurvePositionsAreClose) {
  const auto pts = cloud(3000, 11);
  const auto perm = hilbert3_order(pts);
  const auto pos_to_vertex = invert(perm);
  double total = 0.0;
  for (std::size_t i = 1; i < pos_to_vertex.size(); ++i) {
    const auto& a = pts[static_cast<std::size_t>(pos_to_vertex[i - 1])];
    const auto& b = pts[static_cast<std::size_t>(pos_to_vertex[i])];
    total += std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y) +
                       (a.z - b.z) * (a.z - b.z));
  }
  const double mean_jump = total / static_cast<double>(pos_to_vertex.size() - 1);
  // Ideal ~ (1/3000)^(1/3) = 0.07; generous bound, and must beat Morton.
  EXPECT_LT(mean_jump, 0.15);
}

TEST(Grid3d, StructureAndConnectivity) {
  std::vector<Point3> coords;
  const Csr g = graph::grid_3d(4, 3, 2, &coords);
  EXPECT_EQ(g.num_vertices(), 24);
  // Edges: 3*3*2 x-dir + 4*2*2 y-dir + 4*3*1 z-dir = 18 + 16 + 12.
  EXPECT_EQ(g.num_edges(), 46);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(coords.size(), 24u);
  EXPECT_EQ(g.max_degree(), 5);  // nz = 2: no vertex has neighbors on both z sides
}

TEST(RandomGeometric3d, EdgesRespectRadiusAndMatchBruteForce) {
  std::vector<Point3> pts;
  const Csr g = graph::random_geometric_3d(150, 0.22, 13, &pts);
  graph::EdgeIndex expected = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double dx = pts[i].x - pts[j].x;
      const double dy = pts[i].y - pts[j].y;
      const double dz = pts[i].z - pts[j].z;
      if (dx * dx + dy * dy + dz * dz <= 0.22 * 0.22) ++expected;
    }
  }
  EXPECT_EQ(g.num_edges(), expected);
}

}  // namespace
}  // namespace stance::order

namespace stance::graph {
namespace {

TEST(ChacoIo, RoundTrip) {
  const Csr g = grid_2d_tri(6, 5);
  std::stringstream ss;
  write_chaco(ss, g);
  const Csr g2 = read_chaco(ss);
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.offsets(), g.offsets());
  EXPECT_EQ(g2.targets(), g.targets());
}

TEST(ChacoIo, ParsesKnownLiteral) {
  // The 4-cycle in Chaco format.
  std::stringstream ss("% a comment\n4 4\n2 4\n1 3\n2 4\n1 3\n");
  const Csr g = read_chaco(ss);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(ChacoIo, IsolatedVertexHasEmptyLine) {
  std::stringstream out;
  const Csr g = Csr::from_edges(3, std::vector<Edge>{{0, 1}});
  write_chaco(out, g);
  const Csr g2 = read_chaco(out);
  EXPECT_EQ(g2.num_vertices(), 3);
  EXPECT_EQ(g2.degree(2), 0);
}

TEST(ChacoIo, RejectsBadInput) {
  std::stringstream missing("4 4\n2 4\n1 3\n");  // only 2 of 4 lines
  EXPECT_THROW(read_chaco(missing), std::invalid_argument);
  std::stringstream range("2 1\n3\n1\n");  // neighbor 3 of 2 vertices
  EXPECT_THROW(read_chaco(range), std::invalid_argument);
  std::stringstream weighted("2 1 1\n2 5\n1 5\n");  // fmt != 0
  EXPECT_THROW(read_chaco(weighted), std::invalid_argument);
}

}  // namespace
}  // namespace stance::graph
