// Tests for partition/ordering quality metrics.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/metrics.hpp"

namespace stance::graph {
namespace {

Csr path4() { return Csr::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}}); }

TEST(EdgeCut, PathSplitInHalf) {
  const Csr g = path4();
  const std::vector<int> part{0, 0, 1, 1};
  EXPECT_EQ(edge_cut(g, part), 1);
  EXPECT_EQ(boundary_vertices(g, part), 2);
}

TEST(EdgeCut, AllInOnePart) {
  const Csr g = path4();
  const std::vector<int> part{0, 0, 0, 0};
  EXPECT_EQ(edge_cut(g, part), 0);
  EXPECT_EQ(boundary_vertices(g, part), 0);
}

TEST(EdgeCut, AlternatingCutsEverything) {
  const Csr g = path4();
  const std::vector<int> part{0, 1, 0, 1};
  EXPECT_EQ(edge_cut(g, part), 3);
  EXPECT_EQ(boundary_vertices(g, part), 4);
}

TEST(EdgeCut, SizeMismatchRejected) {
  const Csr g = path4();
  const std::vector<int> part{0, 0};
  EXPECT_THROW(edge_cut(g, part), std::invalid_argument);
}

TEST(Bandwidth, PathIsOne) { EXPECT_EQ(bandwidth(path4()), 1); }

TEST(Bandwidth, LongEdgeDominates) {
  const Csr g = Csr::from_edges(10, std::vector<Edge>{{0, 9}, {1, 2}});
  EXPECT_EQ(bandwidth(g), 9);
}

TEST(AvgEdgeSpan, PathIsOne) { EXPECT_DOUBLE_EQ(avg_edge_span(path4()), 1.0); }

TEST(AvgEdgeSpan, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(avg_edge_span(Csr::from_edges(3, {})), 0.0);
}

TEST(ContiguousParts, EqualWeightsSplitEvenly) {
  const std::vector<double> w{1.0, 1.0};
  const auto part = contiguous_parts(10, w);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(part[static_cast<std::size_t>(i)], 0);
  for (int i = 5; i < 10; ++i) EXPECT_EQ(part[static_cast<std::size_t>(i)], 1);
}

TEST(ContiguousParts, WeightedSplit) {
  const std::vector<double> w{3.0, 1.0};
  const auto part = contiguous_parts(8, w);
  int count0 = 0;
  for (const int p : part) count0 += (p == 0);
  EXPECT_EQ(count0, 6);
}

TEST(ContiguousParts, RejectsZeroTotalWeight) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(contiguous_parts(4, w), std::invalid_argument);
}

TEST(CutProfile, GridCutGrowsWithParts) {
  const Csr g = grid_2d(16, 16);
  const std::vector<int> procs{1, 2, 4, 8};
  const auto profile = cut_profile(g, procs);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_EQ(profile[0], 0);  // one part: no cut
  for (std::size_t i = 1; i < profile.size(); ++i) EXPECT_GE(profile[i], profile[i - 1]);
  // Row-major grid numbering: a p-way contiguous split cuts ~(p-1) rows.
  EXPECT_EQ(profile[1], 16);
}

}  // namespace
}  // namespace stance::graph
