// Allocation-counting hook for the executor's steady state (ISSUE 2
// acceptance): after a warm-up pass, gather/scatter iterations must perform
// zero heap allocations on every rank — payloads live in the persistent
// ExecWorkspace and message buffers round-trip through the mailbox pool.
//
// Global operator new is replaced with a thread-local counting shim; each
// virtual workstation is one thread, so a rank's counter measures exactly
// the allocations its own code path performed between two barriers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>

#include "exec/edge_sweep.hpp"
#include "exec/gather_scatter.hpp"
#include "exec/irregular_loop.hpp"
#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "mp/transport.hpp"
#include "test_util.hpp"

// The zero-alloc steady state is a guarantee of the *virtual* backend only:
// its mailbox pool round-trips every payload buffer. The shm/tcp backends
// queue through per-source deque lanes whose nodes churn, so when the suite
// runs with STANCE_TRANSPORT=shm/tcp these tests skip rather than assert a
// property the backend never promised (see README "Transports").
#define STANCE_REQUIRE_VIRTUAL_TRANSPORT()                                 \
  if (stance::mp::resolve_transport_kind(                                  \
          stance::mp::TransportKind::kDefault) !=                          \
      stance::mp::TransportKind::kVirtual)                                 \
  GTEST_SKIP() << "zero-alloc steady state is a virtual-backend guarantee"

// The replacement operators below deliberately pair malloc with free; once
// call sites inline (e.g. make_unique of a header-only type at -O2), GCC's
// -Wmismatched-new-delete heuristic flags that pairing even though the
// replacement makes it correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

// Plain zero-initialized TLS: safe to touch from any allocation context.
thread_local std::size_t t_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace stance {
namespace {

using exec::ExecWorkspace;

constexpr int kWarmup = 8;
constexpr int kMeasured = 16;

/// Measured allocations of `iteration`, run kMeasured times after kWarmup
/// warm-up rounds, per rank. Barriers fence the measurement so no rank is
/// still warming up while another is being measured.
template <typename F>
std::vector<std::size_t> measure_steady_state(mp::Cluster& cluster, F&& iteration) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(cluster.spec().nodes.size()));
  cluster.run([&](mp::Process& p) {
    for (int it = 0; it < kWarmup; ++it) iteration(p);
    p.barrier();
    const std::size_t before = t_alloc_count;
    for (int it = 0; it < kMeasured; ++it) iteration(p);
    counts[static_cast<std::size_t>(p.rank())] = t_alloc_count - before;
    p.barrier();
  });
  return counts;
}

TEST(ExecAlloc, GatherScatterSteadyStateIsAllocationFree) {
  STANCE_REQUIRE_VIRTUAL_TRANSPORT();
  Rng rng(99);
  const graph::Csr g = graph::random_delaunay(1500, 99);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto results = test::build_all_schedules(g, part);

  mp::Cluster cluster(sim::MachineSpec::uniform(4));
  std::vector<ExecWorkspace> ws(4);
  std::vector<std::vector<double>> local(4), ghost(4);
  for (std::size_t r = 0; r < 4; ++r) {
    const auto& s = results[r].schedule;
    local[r].assign(static_cast<std::size_t>(s.nlocal), 1.0 + static_cast<double>(r));
    ghost[r].assign(static_cast<std::size_t>(s.nghost), 0.0);
  }

  const auto counts = measure_steady_state(cluster, [&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& s = results[r].schedule;
    exec::gather<double>(p, s, local[r], std::span<double>(ghost[r]), ws[r]);
    exec::scatter_add<double>(p, s, ghost[r], std::span<double>(local[r]), ws[r]);
  });
  for (std::size_t r = 0; r < counts.size(); ++r) {
    EXPECT_EQ(counts[r], 0u) << "rank " << r << " allocated in steady state";
  }
}

TEST(ExecAlloc, ThreadedPackUnpackSteadyStateIsAllocationFree) {
  STANCE_REQUIRE_VIRTUAL_TRANSPORT();
  // ISSUE 3 acceptance: the steady state stays allocation-free with the
  // pack/unpack thread pool enabled. Cutoff 1 forces every copy loop onto
  // the pool; worker threads are spawned during setup, and the fork/join
  // handshake itself must not allocate on the rank thread.
  Rng rng(77);
  const graph::Csr g = graph::random_delaunay(1500, 77);
  const auto part = test::random_partition(g.num_vertices(), 3, rng);
  const auto results = test::build_all_schedules(g, part);

  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  std::vector<ExecWorkspace> ws(3);
  std::vector<std::vector<double>> local(3), ghost(3);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& s = results[r].schedule;
    local[r].assign(static_cast<std::size_t>(s.nlocal), 1.0 + static_cast<double>(r));
    ghost[r].assign(static_cast<std::size_t>(s.nghost), 0.0);
    ws[r].configure(exec::ExecConfig{.pack_threads = 2, .pack_serial_cutoff = 1});
  }

  const auto counts = measure_steady_state(cluster, [&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& s = results[r].schedule;
    exec::gather<double>(p, s, local[r], std::span<double>(ghost[r]), ws[r]);
    exec::scatter_add<double>(p, s, ghost[r], std::span<double>(local[r]), ws[r]);
  });
  for (std::size_t r = 0; r < counts.size(); ++r) {
    EXPECT_EQ(counts[r], 0u) << "rank " << r << " allocated in threaded steady state";
  }
}

TEST(ExecAlloc, CoalescedExchangeSteadyStateIsAllocationFree) {
  STANCE_REQUIRE_VIRTUAL_TRANSPORT();
  // The framed path reuses the same arenas and mailbox pool, so it is
  // allocation-free once the plan exists and the pool is prewarmed.
  Rng rng(78);
  const graph::Csr g = graph::random_delaunay(1500, 78);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto results = test::build_all_schedules(g, part);

  mp::Cluster cluster(sim::MachineSpec::uniform(4), mp::NodeMap::contiguous(4, 2));
  std::vector<sched::CoalescePlan> plans(4);
  cluster.run([&](mp::Process& p) {
    plans[static_cast<std::size_t>(p.rank())] = sched::coalesce(
        p, results[static_cast<std::size_t>(p.rank())].schedule,
        sim::CpuCostModel::free());
  });

  std::vector<ExecWorkspace> ws(4);
  std::vector<std::vector<double>> local(4), ghost(4);
  for (std::size_t r = 0; r < 4; ++r) {
    const auto& s = results[r].schedule;
    local[r].assign(static_cast<std::size_t>(s.nlocal), 1.0 + static_cast<double>(r));
    ghost[r].assign(static_cast<std::size_t>(s.nghost), 0.0);
  }

  const auto counts = measure_steady_state(cluster, [&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& s = results[r].schedule;
    exec::gather_coalesced<double>(p, s, plans[r], local[r],
                                   std::span<double>(ghost[r]), ws[r]);
    exec::scatter_add_coalesced<double>(p, s, plans[r], ghost[r],
                                        std::span<double>(local[r]), ws[r]);
  });
  for (std::size_t r = 0; r < counts.size(); ++r) {
    EXPECT_EQ(counts[r], 0u) << "rank " << r << " allocated in coalesced steady state";
  }
}

TEST(ExecAlloc, PrewarmTracksCountAndBytesIndependently) {
  // Regression for the prewarm memo: count and bytes are independent
  // dimensions. The old single-threshold check treated a request that
  // raised only one of them as already satisfied, so the pool was never
  // re-provisioned and the zero-alloc guarantee silently became
  // best-effort. Runs on every backend (all pools share the same cap
  // semantics).
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    ExecWorkspace ws;
    ws.prewarm(p, 10, 64);
    EXPECT_EQ(ws.prewarm_count(), 10u);
    EXPECT_EQ(ws.prewarm_bytes(), 64u);
    // Raising only bytes must re-provision; the count memo is kept.
    ws.prewarm(p, 4, 128);
    EXPECT_EQ(ws.prewarm_count(), 10u);
    EXPECT_EQ(ws.prewarm_bytes(), 128u);
    // Raising only count, with smaller bytes: bytes memo survives.
    ws.prewarm(p, 12, 32);
    EXPECT_EQ(ws.prewarm_count(), 12u);
    EXPECT_EQ(ws.prewarm_bytes(), 128u);
    // A request the pool cap truncates is NOT memoized as satisfied.
    ws.prewarm(p, 1u << 20, 32);
    EXPECT_EQ(ws.prewarm_count(), 12u);
    EXPECT_EQ(ws.prewarm_bytes(), 128u);
  });
}

TEST(ExecAlloc, ConfigurePrewarmFloorsClampEveryRequest) {
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    ExecWorkspace ws;
    ws.configure(exec::ExecConfig{.prewarm_count = 8, .prewarm_bytes = 256});
    ws.prewarm(p, 1, 1);
    EXPECT_EQ(ws.prewarm_count(), 8u);
    EXPECT_EQ(ws.prewarm_bytes(), 256u);
  });
}

TEST(ExecAlloc, IrregularLoopSteadyStateIsAllocationFree) {
  STANCE_REQUIRE_VIRTUAL_TRANSPORT();
  Rng rng(7);
  const graph::Csr g = graph::random_delaunay(1200, 7);
  const auto part = test::random_partition(g.num_vertices(), 3, rng);
  const auto results = test::build_all_schedules(g, part);

  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  std::vector<std::unique_ptr<exec::IrregularLoop>> loops(3);
  std::vector<std::vector<double>> y(3);
  for (std::size_t r = 0; r < 3; ++r) {
    loops[r] = std::make_unique<exec::IrregularLoop>(results[r].lgraph,
                                                     results[r].schedule);
    y[r].assign(static_cast<std::size_t>(results[r].schedule.nlocal), 1.0);
  }

  const auto counts = measure_steady_state(cluster, [&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    loops[r]->iterate(p, y[r], 1);
  });
  for (std::size_t r = 0; r < counts.size(); ++r) {
    EXPECT_EQ(counts[r], 0u) << "rank " << r << " allocated in steady state";
  }
}

TEST(ExecAlloc, EdgeSweepSteadyStateIsAllocationFree) {
  STANCE_REQUIRE_VIRTUAL_TRANSPORT();
  Rng rng(13);
  const graph::Csr g = graph::random_delaunay(1200, 13);
  const auto part = test::random_partition(g.num_vertices(), 3, rng);
  const auto results = test::build_all_schedules(g, part);

  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  std::vector<std::unique_ptr<exec::EdgeSweep>> sweeps(3);
  std::vector<std::vector<double>> y(3), acc(3);
  for (std::size_t r = 0; r < 3; ++r) {
    sweeps[r] = std::make_unique<exec::EdgeSweep>(results[r].lgraph,
                                                  results[r].schedule);
    const auto n = static_cast<std::size_t>(results[r].schedule.nlocal);
    y[r] = test::seeded_values(n, 13 + r);
    acc[r].assign(n, 0.0);
  }

  const auto counts = measure_steady_state(cluster, [&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    sweeps[r]->sweep(p, y[r], acc[r]);
  });
  for (std::size_t r = 0; r < counts.size(); ++r) {
    EXPECT_EQ(counts[r], 0u) << "rank " << r << " allocated in steady state";
  }
}

}  // namespace
}  // namespace stance
