// Determinism oracles for the SIMD pack path (ISSUE 9): the AVX2 gather
// kernels must be byte-identical to the scalar loops — at the kernel level
// for every element width, offset, and tail shape, and end to end through
// every executor (gather/scatter, IrregularLoop, EdgeSweep, CG) at every
// pool size. Also covers STANCE_SIMD mode resolution. AVX2 comparisons
// self-skip on hosts without the instruction set; the mode plumbing and
// scalar assertions run everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/cg.hpp"
#include "exec/edge_sweep.hpp"
#include "exec/gather_scatter.hpp"
#include "exec/irregular_loop.hpp"
#include "exec/operators.hpp"
#include "exec/simd.hpp"
#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "test_util.hpp"

#define STANCE_REQUIRE_AVX2()                                   \
  if (!exec::simd::avx2_supported())                            \
  GTEST_SKIP() << "host CPU has no AVX2; scalar-only coverage " \
                  "already asserted elsewhere in this suite"

namespace stance {
namespace {

using exec::simd::Mode;

// --- mode plumbing ----------------------------------------------------------

TEST(SimdMode, NamesAreStable) {
  EXPECT_STREQ(exec::simd::mode_name(Mode::kAuto), "auto");
  EXPECT_STREQ(exec::simd::mode_name(Mode::kScalar), "scalar");
  EXPECT_STREQ(exec::simd::mode_name(Mode::kAvx2), "avx2");
}

TEST(SimdMode, DispatchNeverReturnsAuto) {
  const Mode m = exec::simd::dispatch_mode();
  EXPECT_NE(m, Mode::kAuto);
  if (!exec::simd::avx2_supported()) {
    EXPECT_EQ(m, Mode::kScalar);
  }
}

TEST(SimdMode, ResolveIsIdentityForScalarAndChecksAvx2) {
  EXPECT_EQ(exec::simd::resolve(Mode::kScalar), Mode::kScalar);
  EXPECT_EQ(exec::simd::resolve(Mode::kAuto), exec::simd::dispatch_mode());
  if (exec::simd::avx2_supported()) {
    EXPECT_EQ(exec::simd::resolve(Mode::kAvx2), Mode::kAvx2);
  } else {
    EXPECT_THROW((void)exec::simd::resolve(Mode::kAvx2), std::invalid_argument);
  }
}

TEST(SimdMode, WorkspaceRejectsForcedAvx2WhenUnsupported) {
  if (exec::simd::avx2_supported()) {
    GTEST_SKIP() << "rejection path only reachable without AVX2";
  }
  exec::ExecWorkspace ws;
  EXPECT_THROW(ws.configure(exec::ExecConfig{.simd = Mode::kAvx2}),
               std::invalid_argument);
}

// --- kernel-level byte identity ---------------------------------------------

/// idx: a deterministic scramble of [0, n) with repeats — the worst case a
/// schedule can produce (duplicated ghost references).
std::vector<std::int32_t> scrambled_indices(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> idx(n);
  for (std::size_t k = 0; k < n; ++k) {
    idx[k] = static_cast<std::int32_t>(
        rng.uniform(0.0, static_cast<double>(n)));
  }
  return idx;
}

template <typename T>
void expect_pack_identical(std::size_t n, std::uint64_t seed) {
  const auto idx = scrambled_indices(n == 0 ? 1 : n, seed);
  std::vector<T> src(n == 0 ? 1 : n);
  for (std::size_t i = 0; i < src.size(); ++i) {
    T v{};
    const auto bits = 0x9E3779B97F4A7C15ull * (seed + i + 1);
    std::memcpy(&v, &bits, sizeof(T));
    src[i] = v;
  }
  // Sub-range offsets exercise the unaligned begin the chunked pack loops
  // produce; sentinel padding catches out-of-range writes.
  for (const std::size_t begin : {std::size_t{0}, std::min(n, std::size_t{3})}) {
    std::vector<T> scalar_dst(n + 8, T{}), simd_dst(n + 8, T{});
    exec::simd::pack_indexed(src.data(), idx.data(), begin, n,
                             scalar_dst.data(), Mode::kScalar);
    exec::simd::pack_indexed(src.data(), idx.data(), begin, n,
                             simd_dst.data(), Mode::kAvx2);
    ASSERT_EQ(std::memcmp(scalar_dst.data(), simd_dst.data(),
                          scalar_dst.size() * sizeof(T)),
              0)
        << "n=" << n << " begin=" << begin << " width=" << sizeof(T);
  }
}

TEST(SimdPack, ByteIdenticalForEveryWidthAndTailShape) {
  STANCE_REQUIRE_AVX2();
  // Sizes straddle every vector-width boundary: empty, sub-vector, exact
  // multiples, one-past, and large.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{31},
                              std::size_t{32}, std::size_t{33},
                              std::size_t{1000}, std::size_t{65536}}) {
    expect_pack_identical<double>(n, 11 + n);
    expect_pack_identical<float>(n, 12 + n);
    expect_pack_identical<std::uint64_t>(n, 13 + n);
    expect_pack_identical<std::int32_t>(n, 14 + n);
  }
}

// --- executor-level byte identity -------------------------------------------

/// One gather + scatter_add round on every rank with the given SIMD mode and
/// pool size; returns every rank's ghost and local vectors.
std::pair<std::vector<std::vector<double>>, std::vector<std::vector<double>>>
exchange_with_mode(const std::vector<sched::InspectorResult>& results, Mode mode,
                   unsigned threads) {
  const std::size_t nprocs = results.size();
  mp::Cluster cluster(sim::MachineSpec::uniform(nprocs));
  std::vector<std::vector<double>> ghost(nprocs), local(nprocs);
  std::vector<exec::ExecWorkspace> ws(nprocs);
  for (std::size_t r = 0; r < nprocs; ++r) {
    const auto& s = results[r].schedule;
    local[r] = test::seeded_values(static_cast<std::size_t>(s.nlocal), 500 + r);
    ghost[r].assign(static_cast<std::size_t>(s.nghost), 0.0);
    ws[r].configure(exec::ExecConfig{
        .pack_threads = threads, .pack_serial_cutoff = 1, .simd = mode});
  }
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& s = results[r].schedule;
    exec::gather<double>(p, s, local[r], std::span<double>(ghost[r]), ws[r]);
    exec::scatter_add<double>(p, s, ghost[r], std::span<double>(local[r]), ws[r]);
  });
  return {ghost, local};
}

TEST(SimdExec, GatherScatterByteIdenticalAcrossModesAndPoolSizes) {
  STANCE_REQUIRE_AVX2();
  Rng rng(41);
  const graph::Csr g = graph::random_delaunay(3000, 41);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto results = test::build_all_schedules(g, part);

  const auto golden = exchange_with_mode(results, Mode::kScalar, 1);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto simd = exchange_with_mode(results, Mode::kAvx2, threads);
    for (std::size_t r = 0; r < results.size(); ++r) {
      test::expect_vectors_eq(simd.first[r], golden.first[r]);
      test::expect_vectors_eq(simd.second[r], golden.second[r]);
    }
  }
}

/// y after `iters` Jacobi sweeps on every rank under `mode`.
std::vector<std::vector<double>> loop_with_mode(
    const std::vector<sched::InspectorResult>& results, Mode mode, int iters) {
  const std::size_t nprocs = results.size();
  mp::Cluster cluster(sim::MachineSpec::uniform(nprocs));
  std::vector<std::vector<double>> y(nprocs);
  std::vector<std::unique_ptr<exec::IrregularLoop>> loops(nprocs);
  for (std::size_t r = 0; r < nprocs; ++r) {
    loops[r] = std::make_unique<exec::IrregularLoop>(results[r].lgraph,
                                                     results[r].schedule);
    loops[r]->configure(exec::ExecConfig{.simd = mode});
    y[r] = test::seeded_values(
        static_cast<std::size_t>(results[r].schedule.nlocal), 600 + r);
  }
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    loops[r]->iterate(p, y[r], iters);
  });
  return y;
}

TEST(SimdExec, IrregularLoopByteIdenticalAcrossModes) {
  STANCE_REQUIRE_AVX2();
  Rng rng(42);
  const graph::Csr g = graph::random_delaunay(2000, 42);
  const auto part = test::random_partition(g.num_vertices(), 3, rng);
  const auto results = test::build_all_schedules(g, part);
  const auto golden = loop_with_mode(results, Mode::kScalar, 5);
  const auto simd = loop_with_mode(results, Mode::kAvx2, 5);
  for (std::size_t r = 0; r < results.size(); ++r) {
    test::expect_vectors_eq(simd[r], golden[r]);
  }
}

/// acc after one edge sweep on every rank under `mode`.
std::vector<std::vector<double>> sweep_with_mode(
    const std::vector<sched::InspectorResult>& results, Mode mode) {
  const std::size_t nprocs = results.size();
  mp::Cluster cluster(sim::MachineSpec::uniform(nprocs));
  std::vector<std::vector<double>> y(nprocs), acc(nprocs);
  std::vector<std::unique_ptr<exec::EdgeSweep>> sweeps(nprocs);
  for (std::size_t r = 0; r < nprocs; ++r) {
    sweeps[r] = std::make_unique<exec::EdgeSweep>(results[r].lgraph,
                                                  results[r].schedule);
    sweeps[r]->configure(exec::ExecConfig{.simd = mode});
    const auto n = static_cast<std::size_t>(results[r].schedule.nlocal);
    y[r] = test::seeded_values(n, 700 + r);
    acc[r].assign(n, 0.0);
  }
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    sweeps[r]->sweep(p, y[r], acc[r]);
  });
  return acc;
}

TEST(SimdExec, EdgeSweepByteIdenticalAcrossModes) {
  STANCE_REQUIRE_AVX2();
  Rng rng(43);
  const graph::Csr g = graph::random_delaunay(2000, 43);
  const auto part = test::random_partition(g.num_vertices(), 3, rng);
  const auto results = test::build_all_schedules(g, part);
  const auto golden = sweep_with_mode(results, Mode::kScalar);
  const auto simd = sweep_with_mode(results, Mode::kAvx2);
  for (std::size_t r = 0; r < results.size(); ++r) {
    test::expect_vectors_eq(simd[r], golden[r]);
  }
}

/// CG solution (and iteration count) on every rank under `mode`.
std::pair<std::vector<std::vector<double>>, std::vector<int>> cg_with_mode(
    const std::vector<sched::InspectorResult>& results,
    const partition::IntervalPartition& part, const std::vector<double>& b,
    Mode mode) {
  const std::size_t nprocs = results.size();
  mp::Cluster cluster(sim::MachineSpec::uniform(nprocs));
  std::vector<std::vector<double>> x(nprocs);
  std::vector<int> iters(nprocs, 0);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& ir = results[r];
    exec::LaplacianOperator A(ir.lgraph, ir.schedule, 0.5);
    A.configure(exec::ExecConfig{.simd = mode});
    const auto n = static_cast<std::size_t>(ir.schedule.nlocal);
    std::vector<double> bl(n);
    for (std::size_t i = 0; i < n; ++i) {
      bl[i] = b[static_cast<std::size_t>(
          part.to_global(p.rank(), static_cast<graph::Vertex>(i)))];
    }
    x[r].assign(n, 0.0);
    const auto result = exec::conjugate_gradient(p, A, bl, x[r]);
    iters[r] = result.iterations;
  });
  return {x, iters};
}

TEST(SimdExec, ConjugateGradientByteIdenticalAcrossModes) {
  STANCE_REQUIRE_AVX2();
  const auto g = graph::random_delaunay(800, 44);
  const auto part = partition::IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>{1, 2, 1});
  const auto results = test::build_all_schedules(g, part);
  const auto x_star =
      test::seeded_values(static_cast<std::size_t>(g.num_vertices()), 44);
  std::vector<double> b(x_star.size());
  exec::LaplacianOperator::reference_apply(g, 0.5, x_star, b);

  const auto golden = cg_with_mode(results, part, b, Mode::kScalar);
  const auto simd = cg_with_mode(results, part, b, Mode::kAvx2);
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_EQ(simd.second[r], golden.second[r]) << "iteration counts differ";
    test::expect_vectors_eq(simd.first[r], golden.first[r]);
  }
}

}  // namespace
}  // namespace stance
