// Unit tests for mp::Mailbox and mp::Rendezvous, including threaded blocking
// behaviour and shutdown (failure-injection) paths.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mp/errors.hpp"
#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "mp/rendezvous.hpp"

namespace stance::mp {
namespace {

RawMessage make_msg(Rank src, Tag tag, std::initializer_list<int> vals, double arrival) {
  std::vector<int> v(vals);
  return RawMessage{src, tag, to_bytes(std::span<const int>(v)), arrival};
}

TEST(Bytes, RoundTripInts) {
  std::vector<int> v{1, -2, 3, 2000000000};
  const auto bytes = to_bytes(std::span<const int>(v));
  EXPECT_EQ(bytes.size(), v.size() * sizeof(int));
  EXPECT_EQ(from_bytes<int>(bytes), v);
}

TEST(Bytes, RoundTripDoublesAndEmpty) {
  std::vector<double> v{1.5, -2.25, 0.0};
  EXPECT_EQ(from_bytes<double>(to_bytes(std::span<const double>(v))), v);
  std::vector<double> empty;
  EXPECT_TRUE(from_bytes<double>(to_bytes(std::span<const double>(empty))).empty());
}

TEST(Mailbox, TakeMatchesSourceAndTag) {
  Mailbox box;
  box.deposit(make_msg(1, 10, {111}, 0.0));
  box.deposit(make_msg(2, 10, {222}, 0.0));
  box.deposit(make_msg(1, 20, {333}, 0.0));
  const auto m = box.take(2, 10);
  EXPECT_EQ(from_bytes<int>(m.payload)[0], 222);
  EXPECT_EQ(box.pending(), 2u);
}

TEST(Mailbox, FifoPerSenderAndTag) {
  Mailbox box;
  box.deposit(make_msg(3, 7, {1}, 0.0));
  box.deposit(make_msg(3, 7, {2}, 0.0));
  box.deposit(make_msg(3, 7, {3}, 0.0));
  EXPECT_EQ(from_bytes<int>(box.take(3, 7).payload)[0], 1);
  EXPECT_EQ(from_bytes<int>(box.take(3, 7).payload)[0], 2);
  EXPECT_EQ(from_bytes<int>(box.take(3, 7).payload)[0], 3);
}

TEST(Mailbox, TryTakeReturnsEmptyWhenNoMatch) {
  Mailbox box;
  box.deposit(make_msg(1, 1, {9}, 0.0));
  EXPECT_FALSE(box.try_take(1, 2).has_value());
  EXPECT_FALSE(box.try_take(2, 1).has_value());
  EXPECT_TRUE(box.try_take(1, 1).has_value());
}

TEST(Mailbox, BlockingTakeWakesOnDeposit) {
  Mailbox box;
  std::atomic<bool> got{false};
  std::thread taker([&] {
    const auto m = box.take(5, 5);
    EXPECT_EQ(from_bytes<int>(m.payload)[0], 55);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  box.deposit(make_msg(5, 5, {55}, 1.0));
  taker.join();
  EXPECT_TRUE(got.load());
}

TEST(Mailbox, ShutdownReleasesBlockedTaker) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  std::thread taker([&] {
    try {
      (void)box.take(1, 1);
    } catch (const ClusterAborted&) {
      aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.shutdown();
  taker.join();
  EXPECT_TRUE(aborted.load());
}

TEST(Mailbox, DepositAfterShutdownIsDropped) {
  Mailbox box;
  box.shutdown();
  box.deposit(make_msg(1, 1, {1}, 0.0));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, ClearKeepsShutdownSticky) {
  // A mailbox that released blocked takers must not be silently revived by
  // clear(): a still-unwinding peer's late deposit would leak into the next
  // run. Only the explicit reset() re-opens it.
  Mailbox box;
  box.shutdown();
  box.clear();
  box.deposit(make_msg(1, 1, {1}, 0.0));
  EXPECT_EQ(box.pending(), 0u);
  EXPECT_THROW((void)box.try_take(1, 1), ClusterAborted);
}

TEST(Mailbox, ResetReenablesAfterShutdown) {
  Mailbox box;
  box.shutdown();
  box.reset();
  box.deposit(make_msg(1, 1, {1}, 0.0));
  EXPECT_EQ(box.pending(), 1u);
  EXPECT_TRUE(box.try_take(1, 1).has_value());
}

TEST(Mailbox, TryTakeThrowsAfterShutdown) {
  Mailbox box;
  box.deposit(make_msg(1, 1, {9}, 0.0));
  box.shutdown();
  EXPECT_THROW((void)box.try_take(1, 1), ClusterAborted);
}

TEST(Mailbox, TakeThrowsImmediatelyWhenAlreadyDown) {
  // The non-blocking arm of the shutdown path: a taker that arrives after
  // shutdown must not wait for a deposit that can never come.
  Mailbox box;
  box.shutdown();
  EXPECT_THROW((void)box.take(2, 2), ClusterAborted);
}

TEST(Mailbox, ShutdownReleasesSeveralBlockedTakers) {
  Mailbox box;
  std::atomic<int> aborted{0};
  std::vector<std::thread> takers;
  for (int t = 0; t < 3; ++t) {
    takers.emplace_back([&, t] {
      try {
        (void)box.take(t, 7);
      } catch (const ClusterAborted&) {
        ++aborted;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.shutdown();
  for (auto& t : takers) t.join();
  EXPECT_EQ(aborted.load(), 3);
}

TEST(Mailbox, ClearDropsQueuedMessagesButKeepsPool) {
  Mailbox box;
  box.deposit(make_msg(1, 1, {1}, 0.0));
  box.deposit(make_msg(1, 2, {2}, 0.0));
  ASSERT_TRUE(box.prefill(1, 64));
  box.clear();
  EXPECT_EQ(box.pending(), 0u);
  // The pool survives a clear: prior prefill guarantees still hold, so this
  // acquire reuses pooled capacity rather than allocating fresh.
  const auto buffer = box.acquire(64);
  EXPECT_EQ(buffer.size(), 64u);
}

TEST(Mailbox, PrefillReportsTruncationAtPoolCap) {
  Mailbox box;
  EXPECT_TRUE(box.prefill(10, 32));
  // Asking beyond the pool cap must be reported, not silently satisfied.
  EXPECT_FALSE(box.prefill(100000, 32));
}

TEST(Mailbox, PrefillGrowsBufferCapacityAtPoolCap) {
  // Regression: once the pool sat at kMaxPooled with undersized buffers, a
  // request for the same count at bigger bytes could never be satisfied —
  // nothing could be appended and nothing was grown — so the executor's
  // prewarm retried (and failed) forever. The pool now grows buffers in
  // place when it is at the cap.
  Mailbox box;
  ASSERT_TRUE(box.prefill(BufferPool::kMaxPooled, 32));
  EXPECT_TRUE(box.prefill(BufferPool::kMaxPooled, 4096));
  // The grown capacity is real: acquiring at the new size reuses pooled
  // storage (allocation-freedom itself is asserted by test_exec_alloc).
  const auto buffer = box.acquire(4096);
  EXPECT_EQ(buffer.size(), 4096u);
}

TEST(Mailbox, RingOverflowPreservesFifoAndCount) {
  // Deposits beyond the lock-free ring's capacity spill to the overflow
  // queue; the consumer must still see every message, in per-sender order,
  // with cross-source matching intact.
  Mailbox box;
  const int total = static_cast<int>(Mailbox::kRingSlots) * 2 + 17;
  for (int i = 0; i < total; ++i) {
    box.deposit(make_msg(i % 2, 9, {i}, 0.0));
  }
  EXPECT_EQ(box.pending(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const auto m = box.take(i % 2, 9);
    EXPECT_EQ(from_bytes<int>(m.payload)[0], i) << "out of order at " << i;
  }
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, FenceDropsQueuedClearsPoisonAndFiltersStaleEpochs) {
  Mailbox box;
  box.deposit(make_msg(1, 1, {1}, 0.0), /*epoch=*/0);
  box.poison(FailNotice{.what = "peer died", .peer = 2, .peer_failed = true});
  box.fence(/*floor=*/1);
  EXPECT_EQ(box.pending(), 0u);
  // Stale pre-recovery traffic is dropped; current-epoch deposits flow.
  box.deposit(make_msg(1, 1, {2}, 0.0), /*epoch=*/0);
  EXPECT_EQ(box.pending(), 0u);
  box.deposit(make_msg(1, 1, {3}, 0.0), /*epoch=*/1);
  const auto m = box.take(1, 1);
  EXPECT_EQ(from_bytes<int>(m.payload)[0], 3);
}

TEST(Rendezvous, SingleParticipantCompletesImmediately) {
  Rendezvous rv(1);
  std::vector<int> data{42};
  const auto round = rv.enter(0, 3.5, to_bytes(std::span<const int>(data)));
  ASSERT_EQ(round.blobs.size(), 1u);
  EXPECT_EQ(from_bytes<int>(round.blobs[0])[0], 42);
  EXPECT_DOUBLE_EQ(round.max_time, 3.5);
}

TEST(Rendezvous, CollectsAllBlobsAndMaxTime) {
  constexpr int kN = 4;
  Rendezvous rv(kN);
  std::vector<std::thread> threads;
  std::vector<Rendezvous::Round> rounds(kN);
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      std::vector<int> mine{r * 100};
      rounds[static_cast<std::size_t>(r)] =
          rv.enter(r, static_cast<double>(r), to_bytes(std::span<const int>(mine)));
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kN; ++r) {
    const auto& round = rounds[static_cast<std::size_t>(r)];
    EXPECT_DOUBLE_EQ(round.max_time, 3.0);
    for (int s = 0; s < kN; ++s) {
      EXPECT_EQ(from_bytes<int>(round.blobs[static_cast<std::size_t>(s)])[0], s * 100);
    }
  }
}

TEST(Rendezvous, ReusableAcrossRounds) {
  constexpr int kN = 3;
  Rendezvous rv(kN);
  for (int round_no = 0; round_no < 5; ++round_no) {
    std::vector<std::thread> threads;
    std::vector<double> maxes(kN);
    for (int r = 0; r < kN; ++r) {
      threads.emplace_back([&, r] {
        std::vector<int> mine{round_no * 10 + r};
        const auto round =
            rv.enter(r, static_cast<double>(round_no), to_bytes(std::span<const int>(mine)));
        maxes[static_cast<std::size_t>(r)] = round.max_time;
        for (int s = 0; s < kN; ++s) {
          EXPECT_EQ(from_bytes<int>(round.blobs[static_cast<std::size_t>(s)])[0],
                    round_no * 10 + s);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const double m : maxes) EXPECT_DOUBLE_EQ(m, static_cast<double>(round_no));
  }
}

TEST(Rendezvous, ShutdownReleasesWaiters) {
  Rendezvous rv(2);
  std::atomic<bool> aborted{false};
  std::thread waiter([&] {
    try {
      (void)rv.enter(0, 0.0, {});
    } catch (const ClusterAborted&) {
      aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  rv.shutdown();
  waiter.join();
  EXPECT_TRUE(aborted.load());
}

}  // namespace
}  // namespace stance::mp
