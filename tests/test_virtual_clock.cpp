// Unit tests for sim::VirtualClock.
#include <gtest/gtest.h>

#include "sim/virtual_clock.hpp"

namespace stance::sim {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  EXPECT_DOUBLE_EQ(c.speed(), 1.0);
}

TEST(VirtualClock, AdvanceWorkAtUnitSpeed) {
  VirtualClock c;
  c.advance_work(2.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.5);
}

TEST(VirtualClock, SlowNodeStretchesWork) {
  VirtualClock c(0.5, LoadProfile{});
  c.advance_work(3.0);  // 3 reference-seconds on a half-speed node
  EXPECT_DOUBLE_EQ(c.now(), 6.0);
}

TEST(VirtualClock, LoadedNodeStretchesWork) {
  VirtualClock c(1.0, LoadProfile::competing_jobs(1));
  c.advance_work(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 6.0);
}

TEST(VirtualClock, SpeedAndLoadCompose) {
  VirtualClock c(0.5, LoadProfile::constant(0.5));
  c.advance_work(1.0);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(VirtualClock, AdvanceDelayIgnoresProfile) {
  VirtualClock c(1.0, LoadProfile::constant(0.1));
  c.advance_delay(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(VirtualClock, NegativeAmountsAreNoOps) {
  VirtualClock c;
  c.advance_work(-1.0);
  c.advance_delay(-1.0);
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(VirtualClock, MergeNeverGoesBackwards) {
  VirtualClock c;
  c.advance_delay(5.0);
  c.merge(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
  c.merge(8.0);
  EXPECT_DOUBLE_EQ(c.now(), 8.0);
}

TEST(VirtualClock, ResetRestartsTime) {
  VirtualClock c;
  c.advance_work(10.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.reset(4.0);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(VirtualClock, WorkSpansProfileStep) {
  // Full speed until t=2, then 25%: 4 busy seconds = 2 + 2/0.25 = 10.
  VirtualClock c(1.0, LoadProfile::step(2.0, 1.0, 0.25));
  c.advance_work(4.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(VirtualClock, SetProfileAppliesToFutureWork) {
  VirtualClock c;
  c.advance_work(1.0);
  c.set_profile(LoadProfile::constant(0.5));
  c.advance_work(1.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
}

TEST(VirtualClock, EffectiveSpeedTracksProfile) {
  VirtualClock c(2.0, LoadProfile::step(5.0, 1.0, 0.5));
  EXPECT_DOUBLE_EQ(c.effective_speed(), 2.0);
  c.advance_delay(6.0);
  EXPECT_DOUBLE_EQ(c.effective_speed(), 1.0);
}

TEST(VirtualClock, SequentialWorkAccumulates) {
  VirtualClock c(1.0, LoadProfile::constant(0.5));
  for (int i = 0; i < 10; ++i) c.advance_work(0.5);
  EXPECT_NEAR(c.now(), 10.0, 1e-12);
}

}  // namespace
}  // namespace stance::sim
