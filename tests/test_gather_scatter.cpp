// Typed tests for the header-only gather/scatter kernels: the templates must
// behave identically on float, double, and integer index-vector payloads
// (previously only the double path was exercised, via test_exec.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/gather_scatter.hpp"
#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "test_util.hpp"

namespace stance::exec {
namespace {

using partition::IntervalPartition;
using test::build_all_schedules;

// One mesh/partition/schedule triple shared (built once) by every payload
// type and the index-vector test below; tests only read from it.
struct MeshSetup {
  graph::Csr g;
  IntervalPartition part;
  std::vector<sched::InspectorResult> schedules;
};

const MeshSetup& shared_setup() {
  static const MeshSetup s = [] {
    MeshSetup m{graph::random_delaunay(200, 31), {}, {}};
    m.part = IntervalPartition::from_weights(m.g.num_vertices(),
                                             std::vector<double>{0.5, 0.3, 0.2});
    m.schedules = build_all_schedules(m.g, m.part);
    return m;
  }();
  return s;
}

template <typename T>
class GatherScatterTyped : public ::testing::Test {
 protected:
  const IntervalPartition& part_ = shared_setup().part;
  const std::vector<sched::InspectorResult>& schedules_ = shared_setup().schedules;
};

using WirePayloads =
    ::testing::Types<float, double, std::int32_t, std::uint16_t, std::int64_t>;
TYPED_TEST_SUITE(GatherScatterTyped, WirePayloads);

TYPED_TEST(GatherScatterTyped, GatherDeliversGlobalIds) {
  using T = TypeParam;
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  cluster.run([&](mp::Process& p) {
    const auto& ir = this->schedules_[static_cast<std::size_t>(p.rank())];
    // local[i] = global id of element i; small enough to be exact in every
    // payload type (200 vertices).
    std::vector<T> local(static_cast<std::size_t>(ir.schedule.nlocal));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = static_cast<T>(
          this->part_.to_global(p.rank(), static_cast<graph::Vertex>(i)));
    }
    std::vector<T> ghost(static_cast<std::size_t>(ir.schedule.nghost), T{0});
    gather<T>(p, ir.schedule, local, ghost);
    for (std::size_t slot = 0; slot < ghost.size(); ++slot) {
      EXPECT_EQ(ghost[slot], static_cast<T>(ir.schedule.ghost_globals[slot]))
          << "slot " << slot;
    }
  });
}

TYPED_TEST(GatherScatterTyped, ScatterAddAccumulatesReferencerCounts) {
  using T = TypeParam;
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  cluster.run([&](mp::Process& p) {
    const auto& ir = this->schedules_[static_cast<std::size_t>(p.rank())];
    // Every rank contributes 1 per ghost reference; each owned element ends
    // up with the number of *other* ranks referencing it (exact in any T).
    std::vector<T> ghost(static_cast<std::size_t>(ir.schedule.nghost), T{1});
    std::vector<T> local(static_cast<std::size_t>(ir.schedule.nlocal), T{0});
    scatter_add<T>(p, ir.schedule, ghost, local);
    for (std::size_t i = 0; i < local.size(); ++i) {
      const auto global =
          this->part_.to_global(p.rank(), static_cast<graph::Vertex>(i));
      T expected{0};
      for (int r = 0; r < this->part_.nparts(); ++r) {
        if (r == p.rank()) continue;
        const auto& gg =
            this->schedules_[static_cast<std::size_t>(r)].schedule.ghost_globals;
        if (std::count(gg.begin(), gg.end(), global) > 0) {
          expected = static_cast<T>(expected + T{1});
        }
      }
      EXPECT_EQ(local[i], expected) << "local " << i;
    }
  });
}

TYPED_TEST(GatherScatterTyped, ScatterGatherRoundTripPreservesValues) {
  using T = TypeParam;
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  cluster.run([&](mp::Process& p) {
    const auto& ir = this->schedules_[static_cast<std::size_t>(p.rank())];
    // Max-combine scatter of gathered values is the identity: each owner
    // already holds the value every referencer sends back.
    std::vector<T> local(static_cast<std::size_t>(ir.schedule.nlocal));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = static_cast<T>(
          7 + this->part_.to_global(p.rank(), static_cast<graph::Vertex>(i)) % 40);
    }
    const std::vector<T> before = local;
    std::vector<T> ghost(static_cast<std::size_t>(ir.schedule.nghost));
    gather<T>(p, ir.schedule, local, ghost);
    scatter<T>(p, ir.schedule, ghost, local,
               [](T a, T b) { return std::max(a, b); });
    test::expect_vectors_eq(local, before);
  });
}

TYPED_TEST(GatherScatterTyped, EmptyClusterSegmentsAreFine) {
  using T = TypeParam;
  // Single rank: no communication, gather/scatter must still validate sizes
  // and touch nothing.
  const auto g = graph::grid_2d_tri(5, 5);
  const auto part =
      IntervalPartition::from_weights(g.num_vertices(), std::vector<double>{1.0});
  const auto schedules = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    std::vector<T> local(static_cast<std::size_t>(schedules[0].schedule.nlocal), T{3});
    std::vector<T> ghost;
    gather<T>(p, schedules[0].schedule, local, ghost);
    scatter_add<T>(p, schedules[0].schedule, ghost, local);
    for (const T v : local) EXPECT_EQ(v, T{3});
  });
}

// The index-vector path: gather the owner-rank of each ghost as an integer
// payload, then use it for indirection — the idiom translation tables use.
TEST(GatherScatterIndexVector, GatheredIndicesAreValidForIndirection) {
  const auto& [g, part, schedules] = shared_setup();
  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  cluster.run([&](mp::Process& p) {
    const auto& ir = schedules[static_cast<std::size_t>(p.rank())];
    std::vector<std::int32_t> owner_of(
        static_cast<std::size_t>(ir.schedule.nlocal),
        static_cast<std::int32_t>(p.rank()));
    std::vector<std::int32_t> ghost_owner(
        static_cast<std::size_t>(ir.schedule.nghost), -1);
    gather<std::int32_t>(p, ir.schedule, owner_of, ghost_owner);
    for (std::size_t slot = 0; slot < ghost_owner.size(); ++slot) {
      // Indirection through the gathered index must agree with the partition.
      ASSERT_GE(ghost_owner[slot], 0);
      ASSERT_LT(ghost_owner[slot], part.nparts());
      EXPECT_EQ(ghost_owner[slot], part.owner(ir.schedule.ghost_globals[slot]));
    }
  });
}

}  // namespace
}  // namespace stance::exec
