// Tests for redistribution planning and arrangement scoring, including the
// paper's Figure-5 example verified exactly.
#include <gtest/gtest.h>

#include "partition/arrangement.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace stance::partition {
namespace {

const std::vector<double> kOldW{0.27, 0.18, 0.34, 0.07, 0.14};
const std::vector<double> kNewW{0.10, 0.13, 0.29, 0.24, 0.24};

TEST(PlanRedistribution, IdenticalPartitionsNeedNothing) {
  const auto part = IntervalPartition::from_sizes(std::vector<Vertex>{4, 6});
  EXPECT_TRUE(plan_redistribution(part, part).empty());
  const auto c = redistribution_cost(part, part);
  EXPECT_EQ(c.moved, 0);
  EXPECT_EQ(c.messages, 0);
  EXPECT_EQ(c.overlap, 10);
}

TEST(PlanRedistribution, TransfersCoverExactlyTheMovedElements) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t p = 2 + rng.below(6);
    const auto n = static_cast<Vertex>(40 + rng.below(400));
    const auto from = test::random_partition(n, p, rng);
    const auto to = test::random_partition(n, p, rng);
    const auto transfers = plan_redistribution(from, to);
    Vertex total = 0;
    for (const auto& t : transfers) {
      EXPECT_NE(t.src, t.dst);
      EXPECT_LT(t.begin, t.end);
      total += t.count();
      // Every element of the range is owned by src before and dst after.
      EXPECT_TRUE(from.owns(t.src, t.begin));
      EXPECT_TRUE(from.owns(t.src, t.end - 1));
      EXPECT_TRUE(to.owns(t.dst, t.begin));
      EXPECT_TRUE(to.owns(t.dst, t.end - 1));
    }
    EXPECT_EQ(total, from.moved(to));
  }
}

TEST(PlanRedistribution, AtMostOneTransferPerPair) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const auto from = test::random_partition(300, 5, rng);
    const auto to = test::random_partition(300, 5, rng);
    std::set<std::pair<Rank, Rank>> pairs;
    for (const auto& t : plan_redistribution(from, to)) {
      EXPECT_TRUE(pairs.emplace(t.src, t.dst).second)
          << "duplicate transfer " << t.src << "->" << t.dst;
    }
  }
}

TEST(RedistributionCost, PaperFigure5Messages) {
  // The paper quotes 71 moved / 5 messages and 35 moved / 3 messages; exact
  // arithmetic on the quoted weights gives 69/6 and 36/5 (see EXPERIMENTS.md
  // — the figure is hand-approximated). The ordering of the two options is
  // what matters and is preserved.
  const auto from = IntervalPartition::from_weights(100, kOldW);
  const auto same = IntervalPartition::from_weights(100, kNewW);
  const auto c1 = redistribution_cost(from, same);
  EXPECT_EQ(c1.moved, 69);
  EXPECT_EQ(c1.overlap, 31);
  EXPECT_EQ(c1.messages, 6);
  const auto better =
      IntervalPartition::from_weights_arranged(100, kNewW, Arrangement{0, 3, 1, 2, 4});
  const auto c2 = redistribution_cost(from, better);
  EXPECT_EQ(c2.moved, 36);
  EXPECT_EQ(c2.overlap, 64);
  EXPECT_EQ(c2.messages, 5);
}

TEST(ArrangementObjective, OverlapOnlyPrefersLessMovement) {
  const auto obj = ArrangementObjective::overlap_only();
  const auto from = IntervalPartition::from_weights(100, kOldW);
  const double same = score_arrangement(from, kNewW, Arrangement{0, 1, 2, 3, 4}, obj);
  const double better = score_arrangement(from, kNewW, Arrangement{0, 3, 1, 2, 4}, obj);
  EXPECT_GT(better, same);
  EXPECT_DOUBLE_EQ(same, -69.0);
  EXPECT_DOUBLE_EQ(better, -36.0);
}

TEST(ArrangementObjective, FromNetworkWeighsMessages) {
  const auto net = sim::NetworkModel::ethernet_10mbps();
  const auto obj = ArrangementObjective::from_network(net, sizeof(double));
  EXPECT_GT(obj.per_message, 1e-3);  // latency + overheads
  EXPECT_NEAR(obj.per_element, 8.0 / 1.0e6, 1e-12);
  const RedistributionCost c{.moved = 100, .overlap = 0, .messages = 4};
  EXPECT_LT(obj.score(c), 0.0);
}

TEST(ArrangementObjective, MessagePenaltyCanFlipTheChoice) {
  // An arrangement with slightly more data movement but fewer messages wins
  // under a latency-heavy objective.
  const auto from = IntervalPartition::from_sizes(std::vector<Vertex>{50, 50});
  const std::vector<double> new_w{0.5, 0.5};
  ArrangementObjective latency_heavy{1000.0, 0.0};
  const double keep = score_arrangement(from, new_w, Arrangement{0, 1}, latency_heavy);
  const double swap = score_arrangement(from, new_w, Arrangement{1, 0}, latency_heavy);
  EXPECT_GT(keep, swap);  // swapping 2 equal blocks = pure message waste
}

TEST(Transfer, CountAndEquality) {
  const Transfer t{0, 1, 10, 25};
  EXPECT_EQ(t.count(), 15);
  EXPECT_EQ(t, (Transfer{0, 1, 10, 25}));
  EXPECT_FALSE(t == (Transfer{0, 1, 10, 24}));
}

}  // namespace
}  // namespace stance::partition
