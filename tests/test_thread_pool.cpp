// ThreadPool (support/thread_pool.hpp) and the threaded pack/unpack path:
// chunk coverage, reuse, and the ISSUE 3 determinism contract — gather and
// scatter produce byte-identical results for pool sizes 1, 2, and 8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "exec/gather_scatter.hpp"
#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using support::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads, /*serial_cutoff=*/1);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{2047}, std::size_t{2048}, std::size_t{65536}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ChunkBoundariesIndependentOfScheduling) {
  // The same (n, threads) always yields the same chunking: record the chunk
  // a writing thread was given for each index and compare two runs.
  ThreadPool pool(4, 1);
  const std::size_t n = 10000;
  auto chunk_of = [&] {
    std::vector<std::size_t> begin_of(n);
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) begin_of[i] = b;
    });
    return begin_of;
  };
  EXPECT_EQ(chunk_of(), chunk_of());
}

TEST(ThreadPool, ReusableAcrossManyRuns) {
  ThreadPool pool(3, 1);
  std::vector<std::int64_t> data(4096);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) data[i] = static_cast<std::int64_t>(i) + round;
    });
    EXPECT_EQ(data[0], round);
    EXPECT_EQ(data[4095], 4095 + round);
  }
}

TEST(ThreadPool, SerialCutoffRunsInline) {
  ThreadPool pool(4);  // default cutoff 2048
  std::vector<int> v(100, 0);
  pool.parallel_for(v.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) v[i] = 1;
  });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 100);
}

/// One full gather + scatter_add round on every rank with the given pool
/// size; returns the ghost and local vectors of every rank for bitwise
/// comparison across pool sizes.
std::pair<std::vector<std::vector<double>>, std::vector<std::vector<double>>>
exchange_with_pool(const std::vector<sched::InspectorResult>& results, unsigned threads) {
  const std::size_t nprocs = results.size();
  mp::Cluster cluster(sim::MachineSpec::uniform(nprocs));
  std::vector<std::vector<double>> ghost(nprocs), local(nprocs);
  std::vector<exec::ExecWorkspace> ws(nprocs);
  for (std::size_t r = 0; r < nprocs; ++r) {
    const auto& s = results[r].schedule;
    local[r] = test::seeded_values(static_cast<std::size_t>(s.nlocal), 1000 + r);
    ghost[r].assign(static_cast<std::size_t>(s.nghost), 0.0);
    // Cutoff 1 forces the threaded path even on small per-peer messages.
    ws[r].configure(
        exec::ExecConfig{.pack_threads = threads, .pack_serial_cutoff = 1});
  }
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    const auto& s = results[r].schedule;
    exec::gather<double>(p, s, local[r], std::span<double>(ghost[r]), ws[r]);
    exec::scatter_add<double>(p, s, ghost[r], std::span<double>(local[r]), ws[r]);
  });
  return {ghost, local};
}

TEST(ThreadPool, GatherScatterByteIdenticalForPoolSizes128) {
  Rng rng(31);
  const graph::Csr g = graph::random_delaunay(3000, 31);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto results = test::build_all_schedules(g, part);

  const auto serial = exchange_with_pool(results, 1);
  for (const unsigned threads : {2u, 8u}) {
    const auto pooled = exchange_with_pool(results, threads);
    for (std::size_t r = 0; r < results.size(); ++r) {
      test::expect_vectors_eq(pooled.first[r], serial.first[r]);
      test::expect_vectors_eq(pooled.second[r], serial.second[r]);
    }
  }
}

}  // namespace
}  // namespace stance
