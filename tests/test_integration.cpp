// System-level property tests: random end-to-end configurations — mesh
// family, ordering, schedule builder, weights, cluster size, load profiles —
// must always (a) compute exactly what the sequential reference computes,
// (b) produce valid, mutually consistent schedules, and (c) be virtually
// deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "stance/stance.hpp"
#include "support/rng.hpp"

namespace stance {
namespace {

graph::Csr random_mesh(Rng& rng) {
  const auto kind = rng.below(4);
  const auto n = static_cast<graph::Vertex>(150 + rng.below(500));
  switch (kind) {
    case 0: return graph::random_delaunay(n, rng());
    case 1: return graph::clustered_delaunay(n, 2 + static_cast<int>(rng.below(4)), rng());
    case 2: {
      const auto side = static_cast<graph::Vertex>(8 + rng.below(15));
      return graph::grid_2d_tri(side, side);
    }
    default: return graph::random_geometric(n, 0.12, rng());
  }
}

order::Method random_method(Rng& rng, bool has_coords) {
  for (;;) {
    const auto m = order::all_methods()[rng.below(order::all_methods().size())];
    const bool needs_coords = m == order::Method::kRcb ||
                              m == order::Method::kInertial ||
                              m == order::Method::kMorton ||
                              m == order::Method::kHilbert;
    if (!needs_coords || has_coords) return m;
  }
}

sched::BuildMethod random_builder(Rng& rng) {
  switch (rng.below(3)) {
    case 0: return sched::BuildMethod::kSimple;
    case 1: return sched::BuildMethod::kSort1;
    default: return sched::BuildMethod::kSort2;
  }
}

class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, ParallelLoopEqualsReferenceUnderRandomConfig) {
  Rng rng(GetParam() * 7919 + 13);
  const graph::Csr mesh = random_mesh(rng);
  const auto procs = 1 + rng.below(6);

  SessionConfig cfg;
  cfg.machine = (GetParam() % 2 == 0)
                    ? sim::MachineSpec::heterogeneous(procs, rng())
                    : sim::MachineSpec::uniform_ethernet(procs, rng() % 2 == 0);
  cfg.ordering = random_method(rng, mesh.has_coords());
  cfg.build = random_builder(rng);
  cfg.seed = rng();

  Session s(mesh, cfg);
  const int iters = 1 + static_cast<int>(rng.below(12));
  EXPECT_EQ(s.verify_against_reference(iters), 0.0)
      << "mesh nv=" << mesh.num_vertices() << " procs=" << procs
      << " ordering=" << order::method_name(cfg.ordering)
      << " builder=" << sched::build_method_name(cfg.build) << " iters=" << iters;
}

TEST_P(EndToEnd, AdaptiveRunNeverChangesResults) {
  // Whatever the load profile, the remaps, or the predictor, the computed
  // values must match the no-LB run (modulo checksum regrouping noise).
  Rng rng(GetParam() * 104729 + 7);
  const graph::Csr mesh = graph::random_delaunay(
      static_cast<graph::Vertex>(300 + rng.below(500)), rng());
  const auto procs = 2 + rng.below(4);

  SessionConfig cfg;
  cfg.machine = sim::MachineSpec::uniform_ethernet(procs);
  cfg.ordering = order::Method::kHilbert;
  cfg.build = random_builder(rng);
  Session s(mesh, cfg);
  const auto loaded_rank = static_cast<int>(rng.below(procs));
  switch (rng.below(3)) {
    case 0:
      s.cluster().set_profile(loaded_rank, sim::LoadProfile::competing_jobs(
                                               1 + static_cast<int>(rng.below(3))));
      break;
    case 1:
      s.cluster().set_profile(loaded_rank,
                              sim::LoadProfile::periodic(rng.uniform(0.5, 3.0), 0.5,
                                                         1.0 / 3.0, 1.0));
      break;
    default:
      s.cluster().set_profile(loaded_rank,
                              sim::LoadProfile::step(rng.uniform(0.1, 1.0), 1.0, 0.4));
      break;
  }

  lb::LbOptions lbopts;
  lbopts.check_interval = 5 + static_cast<int>(rng.below(10));
  lbopts.objective = partition::ArrangementObjective::from_network(
      cfg.machine.net, sizeof(double));
  lbopts.strategy = rng.below(2) == 0 ? lb::LbStrategy::kCentralized
                                      : lb::LbStrategy::kDistributed;
  lbopts.use_multicast = rng.below(2) == 0;

  const int iters = 30 + static_cast<int>(rng.below(40));
  const auto with = s.run_adaptive(iters, lbopts, true);
  const auto without = s.run_adaptive(iters, lbopts, false);
  EXPECT_NEAR(with.checksum, without.checksum,
              1e-9 * (1.0 + std::abs(without.checksum)));
}

TEST_P(EndToEnd, VirtualTimeIsDeterministic) {
  Rng rng(GetParam() * 31 + 5);
  const graph::Csr mesh = graph::random_delaunay(400, rng());
  SessionConfig cfg;
  cfg.machine = sim::MachineSpec::sun4_ethernet(2 + rng.below(4));
  cfg.ordering = order::Method::kRcb;
  auto run_once = [&] {
    Session s(mesh, cfg);
    s.cluster().set_profile(0, sim::LoadProfile::competing_jobs(2));
    lb::LbOptions lbopts;
    lbopts.objective = partition::ArrangementObjective::from_network(
        cfg.machine.net, sizeof(double));
    const auto r = s.run_adaptive(40, lbopts, true);
    return std::make_pair(r.loop_seconds, r.checksum);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd, ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace stance
