// Shrink-to-survivors recovery suite (ISSUE 7): checkpoint commit protocol,
// survivor-map shrinking (delegate re-election) and machine subsetting, and
// the end-to-end kill-and-recover oracle — a run that loses a rank mid-loop
// must produce the byte-identical final answer of a failure-free run on the
// survivor set started from the checkpoint it restored. Registered under
// `ctest -L fault`; the _shm/_tcp variants re-run everything on the real
// backends, where the same byte-identity must hold.
#include <gtest/gtest.h>

#include <vector>

#include "graph/builders.hpp"
#include "mp/fault.hpp"
#include "mp/node_map.hpp"
#include "sim/machine.hpp"
#include "stance/checkpoint.hpp"
#include "stance/recovery.hpp"
#include "stance/session.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using mp::FaultPlan;
using mp::KillRule;

std::vector<double> initial_vector(const graph::Csr& mesh) {
  std::vector<double> y(static_cast<std::size_t>(mesh.num_vertices()));
  for (graph::Vertex g = 0; g < mesh.num_vertices(); ++g) {
    y[static_cast<std::size_t>(g)] = Session::initial_value(g);
  }
  return y;
}

// --- CheckpointStore ----------------------------------------------------------

TEST(CheckpointStore, CommitsOnlyWhenEveryRankSavedTheIteration) {
  CheckpointStore store(2, 4);
  EXPECT_EQ(store.last_iteration(), -1);
  EXPECT_FALSE(store.last().has_value());

  const std::vector<double> left{1.0, 2.0};
  const std::vector<double> right{3.0, 4.0};
  EXPECT_EQ(store.save(0, 10, 0, left), 2 * sizeof(double));
  EXPECT_EQ(store.last_iteration(), -1);  // rank 1 has not saved yet
  EXPECT_EQ(store.save(1, 10, 2, right), 2 * sizeof(double));
  EXPECT_EQ(store.last_iteration(), 10);
  EXPECT_EQ(store.commits(), 1);
  const auto cp = store.last();
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->iteration, 10);
  EXPECT_EQ(cp->y, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(CheckpointStore, TornSaveNeverCommits) {
  CheckpointStore store(2, 2);
  (void)store.save(0, 5, 0, std::vector<double>{1.0});
  (void)store.save(1, 5, 1, std::vector<double>{2.0});
  ASSERT_EQ(store.last_iteration(), 5);
  // Rank 0 saves iteration 10, then "dies"; rank 1 never reaches it. The
  // committed checkpoint must remain the consistent cut at iteration 5.
  (void)store.save(0, 10, 0, std::vector<double>{9.0});
  EXPECT_EQ(store.last_iteration(), 5);
  EXPECT_EQ(store.commits(), 1);
  EXPECT_EQ(store.last()->y, (std::vector<double>{1.0, 2.0}));
}

TEST(CheckpointStore, ValidatesArguments) {
  CheckpointStore store(2, 4);
  const std::vector<double> slice{1.0};
  EXPECT_THROW((void)store.save(-1, 0, 0, slice), std::invalid_argument);
  EXPECT_THROW((void)store.save(2, 0, 0, slice), std::invalid_argument);
  EXPECT_THROW((void)store.save(0, -1, 0, slice), std::invalid_argument);
  EXPECT_THROW((void)store.save(0, 0, 4, slice), std::invalid_argument);  // bounds
  (void)store.save(0, 3, 0, slice);
  EXPECT_THROW((void)store.save(0, 3, 0, slice),
               std::invalid_argument);  // iterations must advance
  EXPECT_THROW(CheckpointStore(0, 4), std::invalid_argument);
}

// --- NodeMap::shrink_to -------------------------------------------------------

TEST(NodeMapShrink, DeadDelegateTriggersDefaultReelection) {
  mp::NodeMap nm = mp::NodeMap::contiguous(6, 3);  // {0,1,2} | {3,4,5}
  nm.set_delegate(0, 1);
  const std::vector<mp::Rank> survivors{0, 2, 3, 4, 5};  // the delegate died
  const mp::NodeMap shrunk = nm.shrink_to(survivors);
  EXPECT_EQ(shrunk.nprocs(), 5);
  EXPECT_EQ(shrunk.nnodes(), 2);
  // Node 0 keeps survivor ranks {0,2} -> new {0,1}; incumbent 1 is dead, so
  // the lowest surviving rank takes over.
  EXPECT_EQ(shrunk.delegate_of(0), 0);
  // Node 1 survives intact; incumbent 3 is now new rank 2.
  EXPECT_EQ(shrunk.delegate_of(1), 2);
  EXPECT_EQ(shrunk.node_of(1), 0);  // old rank 2
  EXPECT_EQ(shrunk.node_of(2), 1);  // old rank 3
  EXPECT_EQ(shrunk.generation(), 0u);  // fresh map: coalesce plans are stale
}

TEST(NodeMapShrink, SurvivingIncumbentKeepsTheRole) {
  mp::NodeMap nm = mp::NodeMap::contiguous(6, 3);
  nm.set_delegate(1, 4);
  const std::vector<mp::Rank> survivors{1, 2, 3, 4};  // ranks 0 and 5 died
  const mp::NodeMap shrunk = nm.shrink_to(survivors);
  // Node 1's incumbent (old rank 4) survived as new rank 3 and keeps the
  // frame endpoint; node 0's incumbent (old rank 0) died.
  EXPECT_EQ(shrunk.delegate_of(1), 3);
  EXPECT_EQ(shrunk.delegate_of(0), 0);
}

TEST(NodeMapShrink, FullyDeadNodeDisappears) {
  const mp::NodeMap nm = mp::NodeMap::contiguous(4, 2);  // {0,1} | {2,3}
  const std::vector<mp::Rank> survivors{0, 1};
  const mp::NodeMap shrunk = nm.shrink_to(survivors);
  EXPECT_EQ(shrunk.nnodes(), 1);
  EXPECT_EQ(shrunk.nprocs(), 2);
  EXPECT_TRUE(nm.shrink_to(std::vector<mp::Rank>{3}).trivial());
}

TEST(NodeMapShrink, ValidatesSurvivorList) {
  const mp::NodeMap nm = mp::NodeMap::contiguous(4, 2);
  EXPECT_THROW((void)nm.shrink_to(std::vector<mp::Rank>{}), std::invalid_argument);
  EXPECT_THROW((void)nm.shrink_to(std::vector<mp::Rank>{1, 1}), std::invalid_argument);
  EXPECT_THROW((void)nm.shrink_to(std::vector<mp::Rank>{2, 1}), std::invalid_argument);
  EXPECT_THROW((void)nm.shrink_to(std::vector<mp::Rank>{0, 4}), std::invalid_argument);
}

// --- MachineSpec::subset ------------------------------------------------------

TEST(MachineSubset, KeepsSpeedsProfilesAndNetwork) {
  const sim::MachineSpec machine = sim::MachineSpec::sun4_ethernet(5);
  const std::vector<int> keep{0, 2, 4};
  const sim::MachineSpec sub = machine.subset(keep);
  ASSERT_EQ(sub.size(), 3u);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(sub.nodes[i].speed,
              machine.nodes[static_cast<std::size_t>(keep[i])].speed);
    EXPECT_EQ(sub.nodes[i].hostname,
              machine.nodes[static_cast<std::size_t>(keep[i])].hostname);
  }
  EXPECT_EQ(sub.net.contention, machine.net.contention);
  EXPECT_NE(sub.name, machine.name);
}

TEST(MachineSubset, ValidatesIndices) {
  const sim::MachineSpec machine = sim::MachineSpec::uniform(3);
  EXPECT_THROW((void)machine.subset(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW((void)machine.subset(std::vector<int>{1, 1}), std::invalid_argument);
  EXPECT_THROW((void)machine.subset(std::vector<int>{2, 0}), std::invalid_argument);
  EXPECT_THROW((void)machine.subset(std::vector<int>{0, 3}), std::invalid_argument);
}

// --- end-to-end recovery ------------------------------------------------------

/// Sends per loop sweep of `rank` under the canonical equal-weight interval
/// partition — lets kill rules target an exact sweep deterministically.
std::size_t sends_per_sweep(const graph::Csr& mesh, int nprocs, mp::Rank rank) {
  const auto part = partition::IntervalPartition::from_weights(
      mesh.num_vertices(), std::vector<double>(static_cast<std::size_t>(nprocs), 1.0));
  const auto schedules = test::build_all_schedules(mesh, part);
  return schedules[static_cast<std::size_t>(rank)].schedule.send_procs.size();
}

TEST(Recovery, FailureFreeRunMatchesReference) {
  const graph::Csr mesh = graph::random_delaunay(240, 7);
  const sim::MachineSpec machine = sim::MachineSpec::uniform(4);
  ResilientOptions opts;
  opts.iterations = 8;
  opts.checkpoint_every = 3;

  const ResilientResult result = run_resilient(mesh, machine, opts);
  EXPECT_TRUE(result.dead.empty());
  EXPECT_EQ(result.survivors, (std::vector<mp::Rank>{0, 1, 2, 3}));
  EXPECT_EQ(result.resume_iteration, 0);
  EXPECT_EQ(result.checkpoints_committed, 2);  // iterations 3 and 6
  EXPECT_GT(result.costs.checkpoint_virtual_seconds, 0.0);
  EXPECT_EQ(result.costs.restore_virtual_seconds, 0.0);

  const std::vector<double> expected =
      run_reference_from(mesh, machine, initial_vector(mesh), opts.iterations, opts);
  test::expect_vectors_eq(result.y, expected);
}

TEST(Recovery, KillMidRunRecoversByteIdenticalFromLastCheckpoint) {
  // The acceptance oracle: kill rank 2 two sweeps after the iteration-4
  // checkpoint. Every rank is then guaranteed past its iteration-4 save (the
  // sweep data dependencies bound rank skew by graph distance), so the
  // recovered run must resume from 4 — and its final vector must be
  // byte-identical to a failure-free run on the survivor machine started
  // from that same state.
  const graph::Csr mesh = graph::random_delaunay(240, 7);
  const sim::MachineSpec machine = sim::MachineSpec::uniform(4);
  constexpr mp::Rank kVictim = 2;

  ResilientOptions opts;
  opts.iterations = 10;
  opts.checkpoint_every = 4;
  const std::size_t per_sweep = sends_per_sweep(mesh, 4, kVictim);
  ASSERT_GT(per_sweep, 0u);
  opts.faults.kills = {KillRule{
      .rank = kVictim,
      .after_sends = static_cast<std::int64_t>(7 * per_sweep)}};

  const ResilientResult result = run_resilient(mesh, machine, opts);
  EXPECT_EQ(result.dead, (std::vector<mp::Rank>{kVictim}));
  EXPECT_EQ(result.survivors, (std::vector<mp::Rank>{0, 1, 3}));
  EXPECT_EQ(result.resume_iteration, 4);
  EXPECT_EQ(result.checkpoints_committed, 1);  // the cut at 8 died with rank 2
  EXPECT_GT(result.costs.checkpoint_virtual_seconds, 0.0);
  EXPECT_GT(result.costs.restore_virtual_seconds, 0.0);
  EXPECT_GE(result.costs.agree_virtual_seconds, 0.0);
  EXPECT_GT(result.loop_virtual_seconds, 0.0);

  // Oracle arm 1: the failure-free prefix reproduces the restored state
  // (solution values are partition-independent, bit for bit).
  const std::vector<double> at_checkpoint = run_reference_from(
      mesh, machine, initial_vector(mesh), result.resume_iteration, opts);
  // Oracle arm 2: finish on the survivor machine from that state.
  const sim::MachineSpec survivor_machine =
      machine.subset(std::vector<int>(result.survivors.begin(), result.survivors.end()));
  const std::vector<double> expected =
      run_reference_from(mesh, survivor_machine, at_checkpoint,
                         opts.iterations - result.resume_iteration, opts);
  test::expect_vectors_eq(result.y, expected);
}

TEST(Recovery, KillBeforeFirstCheckpointRestartsFromInitialState) {
  const graph::Csr mesh = graph::random_delaunay(180, 11);
  const sim::MachineSpec machine = sim::MachineSpec::uniform(3);

  ResilientOptions opts;
  opts.iterations = 6;
  opts.checkpoint_every = 4;
  // Rank 1 dies entering its very first loop operation: nothing committed.
  opts.faults.kills = {KillRule{.rank = 1, .after_sends = 0}};

  const ResilientResult result = run_resilient(mesh, machine, opts);
  EXPECT_EQ(result.dead, (std::vector<mp::Rank>{1}));
  EXPECT_EQ(result.survivors, (std::vector<mp::Rank>{0, 2}));
  EXPECT_EQ(result.resume_iteration, 0);
  EXPECT_EQ(result.checkpoints_committed, 0);

  const sim::MachineSpec survivor_machine = machine.subset(std::vector<int>{0, 2});
  const std::vector<double> expected = run_reference_from(
      mesh, survivor_machine, initial_vector(mesh), opts.iterations, opts);
  test::expect_vectors_eq(result.y, expected);
}

TEST(Recovery, ValidatesOptions) {
  const graph::Csr mesh = graph::random_delaunay(60, 3);
  const sim::MachineSpec machine = sim::MachineSpec::uniform(2);
  ResilientOptions opts;
  opts.iterations = 0;
  EXPECT_THROW((void)run_resilient(mesh, machine, opts), std::invalid_argument);
  EXPECT_THROW((void)run_reference_from(mesh, machine, initial_vector(mesh), -1,
                                        ResilientOptions{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)run_reference_from(mesh, machine, std::vector<double>{1.0}, 1,
                               ResilientOptions{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace stance
