// Tests for the distributed Laplacian operator and conjugate-gradient
// solver.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/cg.hpp"
#include "exec/operators.hpp"
#include "graph/builders.hpp"
#include "mp/cluster.hpp"
#include "partition/interval.hpp"
#include "sched/inspector.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace stance::exec {
namespace {

using partition::IntervalPartition;
using test::build_all_schedules;

TEST(LaplacianOperator, MatchesReferenceApply) {
  const auto g = graph::random_delaunay(400, 6);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 2, 1});
  const auto schedules = build_all_schedules(g, part);
  const double shift = 0.7;

  // Global input vector, deterministic.
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.1 * static_cast<double>(i));
  std::vector<double> expected(x.size());
  LaplacianOperator::reference_apply(g, shift, x, expected);

  mp::Cluster cluster(sim::MachineSpec::uniform(3));
  cluster.run([&](mp::Process& p) {
    const auto& ir = schedules[static_cast<std::size_t>(p.rank())];
    LaplacianOperator A(ir.lgraph, ir.schedule, shift);
    const auto n = static_cast<std::size_t>(ir.schedule.nlocal);
    std::vector<double> xl(n), yl(n);
    for (std::size_t i = 0; i < n; ++i) {
      xl[i] = x[static_cast<std::size_t>(
          part.to_global(p.rank(), static_cast<graph::Vertex>(i)))];
    }
    A.apply(p, xl, yl);
    for (std::size_t i = 0; i < n; ++i) {
      const auto gidx = static_cast<std::size_t>(
          part.to_global(p.rank(), static_cast<graph::Vertex>(i)));
      EXPECT_EQ(yl[i], expected[gidx]) << "global " << gidx;
    }
  });
}

TEST(LaplacianOperator, LaplacianOfConstantIsShiftTimesConstant) {
  const auto g = graph::grid_2d_tri(8, 8);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1});
  const auto schedules = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  cluster.run([&](mp::Process& p) {
    const auto& ir = schedules[static_cast<std::size_t>(p.rank())];
    LaplacianOperator A(ir.lgraph, ir.schedule, 2.5);
    const auto n = static_cast<std::size_t>(ir.schedule.nlocal);
    std::vector<double> x(n, 3.0), y(n);
    A.apply(p, x, y);
    for (const double v : y) EXPECT_NEAR(v, 2.5 * 3.0, 1e-12);  // L * const = 0
  });
}

struct CgCase {
  int procs;
  graph::Vertex vertices;
};

class CgSolve : public ::testing::TestWithParam<CgCase> {};

TEST_P(CgSolve, SolvesShiftedLaplacian) {
  const auto [procs, vertices] = GetParam();
  const auto g = graph::random_delaunay(vertices, 17);
  const auto part = IntervalPartition::from_weights(
      g.num_vertices(), std::vector<double>(static_cast<std::size_t>(procs), 1.0));
  const auto schedules = build_all_schedules(g, part);
  const double shift = 0.5;

  // Manufactured solution: x* known, b = A x*.
  const auto x_star =
      test::seeded_values(static_cast<std::size_t>(g.num_vertices()), 3);
  std::vector<double> b(x_star.size());
  LaplacianOperator::reference_apply(g, shift, x_star, b);

  mp::Cluster cluster(sim::MachineSpec::uniform(static_cast<std::size_t>(procs)));
  std::vector<double> max_err(static_cast<std::size_t>(procs), 0.0);
  cluster.run([&](mp::Process& p) {
    const auto& ir = schedules[static_cast<std::size_t>(p.rank())];
    LaplacianOperator A(ir.lgraph, ir.schedule, shift);
    const auto n = static_cast<std::size_t>(ir.schedule.nlocal);
    std::vector<double> bl(n), xl(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      bl[i] = b[static_cast<std::size_t>(
          part.to_global(p.rank(), static_cast<graph::Vertex>(i)))];
    }
    CgOptions opts;
    opts.tolerance = 1e-10;
    const auto result = conjugate_gradient(p, A, bl, xl, opts);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.relative_residual, 1e-9);
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto gidx = static_cast<std::size_t>(
          part.to_global(p.rank(), static_cast<graph::Vertex>(i)));
      err = std::max(err, std::abs(xl[i] - x_star[gidx]));
    }
    max_err[static_cast<std::size_t>(p.rank())] = err;
  });
  for (const double e : max_err) EXPECT_LT(e, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(ProcsAndSizes, CgSolve,
                         ::testing::Values(CgCase{1, 200}, CgCase{2, 200},
                                           CgCase{3, 500}, CgCase{5, 500}));

TEST(CgSolve, DeterministicAcrossRuns) {
  const auto g = graph::random_delaunay(300, 9);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1, 1});
  const auto schedules = build_all_schedules(g, part);
  auto run_once = [&] {
    mp::Cluster cluster(sim::MachineSpec::uniform(3));
    std::vector<double> solution;
    cluster.run([&](mp::Process& p) {
      const auto& ir = schedules[static_cast<std::size_t>(p.rank())];
      LaplacianOperator A(ir.lgraph, ir.schedule, 1.0);
      const auto n = static_cast<std::size_t>(ir.schedule.nlocal);
      std::vector<double> bl(n, 1.0), xl(n, 0.0);
      (void)conjugate_gradient(p, A, bl, xl);
      if (p.rank() == 1) solution = xl;
    });
    return solution;
  };
  EXPECT_EQ(run_once(), run_once());  // bit-identical
}

TEST(CgSolve, ZeroRhsConvergesImmediately) {
  const auto g = graph::grid_2d_tri(6, 6);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1});
  const auto schedules = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform(2));
  cluster.run([&](mp::Process& p) {
    const auto& ir = schedules[static_cast<std::size_t>(p.rank())];
    LaplacianOperator A(ir.lgraph, ir.schedule, 1.0);
    const auto n = static_cast<std::size_t>(ir.schedule.nlocal);
    std::vector<double> bl(n, 0.0), xl(n, 0.0);
    const auto result = conjugate_gradient(p, A, bl, xl);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0);
  });
}

TEST(CgSolve, RespectsIterationCap) {
  const auto g = graph::random_delaunay(400, 2);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1.0});
  const auto schedules = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    LaplacianOperator A(schedules[0].lgraph, schedules[0].schedule, 1e-6);
    std::vector<double> bl(static_cast<std::size_t>(g.num_vertices()), 1.0);
    std::vector<double> xl(bl.size(), 0.0);
    CgOptions opts;
    opts.max_iterations = 3;
    opts.tolerance = 1e-14;
    const auto result = conjugate_gradient(p, A, bl, xl, opts);
    EXPECT_LE(result.iterations, 3);
  });
}

TEST(CgSolve, Validation) {
  const auto g = graph::grid_2d_tri(4, 4);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1.0});
  const auto schedules = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform(1));
  cluster.run([&](mp::Process& p) {
    LaplacianOperator A(schedules[0].lgraph, schedules[0].schedule, 1.0);
    std::vector<double> wrong(3), x(16);
    EXPECT_THROW((void)conjugate_gradient(p, A, wrong, x), std::invalid_argument);
    EXPECT_THROW(LaplacianOperator(schedules[0].lgraph, schedules[0].schedule, -1.0),
                 std::invalid_argument);
  });
}

}  // namespace
}  // namespace stance::exec
