// Unit tests for the support module: RNG, statistics, table printer, CLI,
// and the leveled logger (level parsing, filtering, line formatting).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "support/cli.hpp"
#include "support/env.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace stance {
namespace {

// --- leveled logger --------------------------------------------------------

/// RAII guard: run a log test at a chosen level, restore the prior level.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(log::Level lv) : prior_(log::level()) { log::set_level(lv); }
  ~ScopedLogLevel() { log::set_level(prior_); }

 private:
  log::Level prior_;
};

TEST(Log, ParseLevelAcceptsKnownNamesCaseInsensitively) {
  EXPECT_EQ(log::parse_level("error"), log::Level::kError);
  EXPECT_EQ(log::parse_level("WARN"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("Warning"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("info"), log::Level::kInfo);
  EXPECT_EQ(log::parse_level("DeBuG"), log::Level::kDebug);
  EXPECT_EQ(log::parse_level("trace"), log::Level::kTrace);
  // Unknown strings fall back to info rather than silencing everything.
  EXPECT_EQ(log::parse_level("verbose"), log::Level::kInfo);
  EXPECT_EQ(log::parse_level(""), log::Level::kInfo);
}

TEST(Log, WriteFormatsLevelTagAndMessage) {
  testing::internal::CaptureStderr();
  log::write(log::Level::kError, "coalesce", "stale plan detected");
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_EQ(line, "[ERROR] coalesce: stale plan detected\n");
}

TEST(Log, HelpersConcatenateMixedArguments) {
  ScopedLogLevel scoped(log::Level::kInfo);
  testing::internal::CaptureStderr();
  log::info("lb", "rotated ", 2, " delegates in ", 1.5, " s");
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_EQ(line, "[INFO] lb: rotated 2 delegates in 1.5 s\n");
}

TEST(Log, LevelFiltersMessagesAboveIt) {
  ScopedLogLevel scoped(log::Level::kWarn);
  testing::internal::CaptureStderr();
  log::debug("noisy", "dropped");
  log::trace("noisy", "dropped too");
  log::info("noisy", "dropped as well");
  log::warn("kept", "this survives");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "[WARN] kept: this survives\n");
}

TEST(Log, SetLevelRoundTrips) {
  ScopedLogLevel scoped(log::Level::kTrace);
  EXPECT_EQ(log::level(), log::Level::kTrace);
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
}

// --- SplitMix64 / Rng ------------------------------------------------------

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Reproducible) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng a(42);
  Rng b = a.split();
  // The parent advanced one step; the child must not replay the parent.
  Rng parent_replay(42);
  (void)parent_replay();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (b() == parent_replay()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, MeanOfUniformIsHalf) {
  Rng rng(2024);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Shuffle, IsPermutation) {
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Rng rng(17);
  shuffle(v, rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Shuffle, DeterministicForSeed) {
  std::vector<int> a{1, 2, 3, 4, 5}, b{1, 2, 3, 4, 5};
  Rng ra(9), rb(9);
  shuffle(a, ra);
  shuffle(b, rb);
  EXPECT_EQ(a, b);
}

TEST(RandomWeights, SumToOneAndRespectMinShare) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto w = random_weights(5, rng, 0.05);
    double sum = 0.0;
    for (const double x : w) {
      EXPECT_GE(x, 0.05 - 1e-12);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomWeights, SingleProcessorGetsEverything) {
  Rng rng(1);
  const auto w = random_weights(1, rng);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
}

// --- RunningStats -----------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(77);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Imbalance, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(imbalance({3.0, 3.0, 3.0}), 1.0);
}

TEST(Imbalance, MaxOverMean) {
  EXPECT_DOUBLE_EQ(imbalance({1.0, 2.0, 3.0}), 1.5);
}

// --- TextTable ---------------------------------------------------------------

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("Table X");
  t.set_header({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("beta").cell(std::size_t{42});
  const std::string s = t.str();
  EXPECT_NE(s.find("Table X"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(0.0250, 4), "0.025");
  EXPECT_EQ(format_number(2.0, 4), "2");
  EXPECT_EQ(format_number(1.8417, 4), "1.8417");
}

TEST(FormatNumber, RespectsPrecision) {
  EXPECT_EQ(format_number(1.0 / 3.0, 2), "0.33");
}

// --- CliArgs ------------------------------------------------------------------

TEST(CliArgs, ParsesEqualsAndSpaceForms) {
  // Note: a bare --flag consumes a following non-option token as its value,
  // so positionals must precede flags (documented parser behaviour).
  const char* argv[] = {"prog", "pos1", "--alpha=3", "--beta", "4", "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("missing", "d"), "d");
  EXPECT_EQ(args.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  CliArgs args(5, argv);
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

// --- strict environment parsing --------------------------------------------

/// Scoped override of one environment variable, restored on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

constexpr const char* kVar = "STANCE_TEST_ENV_INT";

TEST(EnvInt, UnsetAndEmptyReturnFallback) {
  {
    ScopedEnv env(kVar, nullptr);
    EXPECT_EQ(support::env_int(kVar), 0);
    EXPECT_EQ(support::env_int(kVar, 42), 42);
  }
  {
    ScopedEnv env(kVar, "");
    EXPECT_EQ(support::env_int(kVar, 42), 42);
  }
  {
    ScopedEnv env(kVar, "   ");
    EXPECT_EQ(support::env_int(kVar, 42), 42);
  }
}

TEST(EnvInt, ParsesPlainAndDecoratedNumbers) {
  {
    ScopedEnv env(kVar, "250");
    EXPECT_EQ(support::env_int(kVar), 250);
  }
  {
    ScopedEnv env(kVar, "  +7  ");
    EXPECT_EQ(support::env_int(kVar), 7);
  }
  {
    ScopedEnv env(kVar, "0");
    EXPECT_EQ(support::env_int(kVar, 9), 0);
  }
}

TEST(EnvInt, RejectsMalformedValuesLoudly) {
  // The bug this guards against: strtol-based parsing silently turned
  // "abc" into 0 (feature off) and "5s" into 5 (unit dropped).
  for (const char* bad : {"abc", "5s", "12 34", "0x10", "-1", "2.5", "++3", "9999999999999"}) {
    ScopedEnv env(kVar, bad);
    EXPECT_THROW((void)support::env_int(kVar), std::invalid_argument) << bad;
  }
}

TEST(EnvInt, ErrorNamesVariableAndValue) {
  ScopedEnv env(kVar, "banana");
  try {
    (void)support::env_int(kVar);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos);
    EXPECT_NE(what.find("banana"), std::string::npos);
  }
}

}  // namespace
}  // namespace stance
