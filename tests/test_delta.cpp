// The delta pipeline end to end (graph/delta.hpp → partition/remap_delta.hpp
// → sched/incremental.hpp → sched/coalesce.hpp patch → stance plan cache):
// CsrDelta algebra (normalize / apply / compose with fingerprint chaining),
// RemapDelta factories, the from-scratch byte-identity oracles for spliced
// schedules and patched frame plans — including the edge cases (empty delta,
// redraw-sized delta, composed deltas) — the rotation invalidation rule, and
// the serving layer's patch-then-hit re-key. Everything here must hold
// bit-exactly on all three transports (the CMake GLOB runs this suite per
// transport).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/builders.hpp"
#include "graph/delta.hpp"
#include "lb/adaptive_executor.hpp"
#include "mp/cluster.hpp"
#include "partition/remap_delta.hpp"
#include "sched/coalesce.hpp"
#include "sched/incremental.hpp"
#include "stance/stance.hpp"
#include "test_util.hpp"

namespace stance {
namespace {

using graph::Csr;
using graph::CsrDelta;
using mp::NodeMap;
using partition::IntervalPartition;
using partition::RemapDelta;
using sched::CoalescePlan;
using sched::InspectorResult;
using test::build_all_schedules;

// --- CsrDelta algebra --------------------------------------------------------

TEST(CsrDelta, NormalizeCanonicalizesEdgesAndWeights) {
  CsrDelta d;
  d.insert_edges = {{5, 2}, {2, 5}, {3, 3}, {1, 4}};
  d.remove_edges = {{9, 7}, {7, 9}};
  d.weight_edits = {{4, 2.0}, {4, 3.0}, {1, 1.5}};
  d.normalize();
  EXPECT_EQ(d.insert_edges, (std::vector<graph::Edge>{{1, 4}, {2, 5}}));
  EXPECT_EQ(d.remove_edges, (std::vector<graph::Edge>{{7, 9}}));
  ASSERT_EQ(d.weight_edits.size(), 2u);
  EXPECT_EQ(d.weight_edits[0].v, 1);
  EXPECT_EQ(d.weight_edits[1].v, 4);
  EXPECT_EQ(d.weight_edits[1].w, 3.0);  // last edit per vertex wins
  EXPECT_EQ(d.dirty_vertices(), (std::vector<graph::Vertex>{1, 2, 4, 5, 7, 9}));
}

TEST(CsrDelta, ApplyEditsStructureAndStampsTheChain) {
  const Csr g = graph::random_delaunay(200, 7);
  const auto edges = g.edge_list();
  CsrDelta d;
  d.insert_edges = {{0, 100}, {3, 150}};
  d.remove_edges = {edges[10], edges[40]};
  d.weight_edits = {{5, 4.0}};
  const Csr g2 = g.apply(d);

  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(d.base_fingerprint, g.fingerprint());
  EXPECT_EQ(d.result_fingerprint, g2.fingerprint());
  EXPECT_NE(g2.fingerprint(), g.fingerprint());
  EXPECT_EQ(g2.weight(5), 4.0);
  const auto nbrs = g2.neighbors(0);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), 100), nbrs.end());
  EXPECT_TRUE(g2.is_symmetric());
}

TEST(CsrDelta, EmptyDeltaIsIdentity) {
  const Csr g = graph::random_delaunay(150, 11);
  CsrDelta d;
  EXPECT_TRUE(d.empty());
  const Csr g2 = g.apply(d);
  EXPECT_EQ(g2.fingerprint(), g.fingerprint());
  EXPECT_EQ(d.base_fingerprint, d.result_fingerprint);
}

TEST(CsrDelta, ThenComposesLikeSequentialApplication) {
  const Csr g = graph::random_delaunay(200, 13);
  const auto edges = g.edge_list();
  CsrDelta d1;
  d1.insert_edges = {{0, 50}};
  d1.remove_edges = {edges[5]};
  d1.weight_edits = {{7, 2.0}};
  CsrDelta d2;
  d2.insert_edges = {{1, 60}, edges[5]};  // re-insert what d1 removed
  d2.remove_edges = {{0, 50}};            // remove what d1 inserted
  d2.weight_edits = {{7, 5.0}};           // supersede d1's edit

  const Csr g1 = g.apply(d1);
  const Csr g2 = g1.apply(d2);
  CsrDelta c = d1.then(d2);
  EXPECT_EQ(c.base_fingerprint, g.fingerprint());
  EXPECT_EQ(c.result_fingerprint, g2.fingerprint());
  const Csr direct = g.apply(c);
  EXPECT_EQ(direct.fingerprint(), g2.fingerprint());
}

TEST(CsrDelta, ThenRefusesABrokenChain) {
  const Csr g = graph::random_delaunay(100, 17);
  const Csr other = graph::random_delaunay(100, 18);
  CsrDelta d1;
  d1.insert_edges = {{0, 50}};
  (void)g.apply(d1);
  CsrDelta d2;
  d2.insert_edges = {{1, 60}};
  (void)other.apply(d2);  // stamped against a different graph
  EXPECT_THROW((void)d1.then(d2), std::invalid_argument);
}

TEST(CsrDelta, ApplyRefusesAMismatchedBase) {
  const Csr g = graph::random_delaunay(100, 19);
  const Csr other = graph::random_delaunay(100, 20);
  CsrDelta d;
  d.insert_edges = {{0, 50}};
  (void)g.apply(d);  // stamps base = g
  EXPECT_THROW((void)other.apply(d), std::invalid_argument);
}

// --- RemapDelta factories ----------------------------------------------------

TEST(RemapDeltaFactories, DriftIsPureAndGraphEditCarriesDirtySet) {
  const Csr g = graph::random_delaunay(300, 23);
  const auto from = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>{1, 1, 1, 1});
  const auto to = IntervalPartition::from_weights(g.num_vertices(),
                                                  std::vector<double>{2, 1, 1, 1});
  const auto drift = RemapDelta::drift(from, to);
  EXPECT_TRUE(drift.pure_drift());
  EXPECT_TRUE(drift.from == from);
  EXPECT_TRUE(drift.to == to);

  CsrDelta cd;
  cd.insert_edges = {{2, 9}, {100, 200}};
  const auto edit = RemapDelta::graph_edit(from, cd);
  EXPECT_FALSE(edit.pure_drift());
  EXPECT_TRUE(edit.from == from);
  EXPECT_TRUE(edit.to == from);
  EXPECT_EQ(edit.dirty, cd.dirty_vertices());

  const auto both = RemapDelta::combined(from, to, cd);
  EXPECT_TRUE(both.from == from);
  EXPECT_TRUE(both.to == to);
  EXPECT_EQ(both.dirty, cd.dirty_vertices());
}

// --- spliced-schedule oracles (graph edits ride the rebuild) -----------------

std::vector<InspectorResult> rebuild_all(const Csr& g_after, const RemapDelta& rd,
                                         const std::vector<InspectorResult>& old) {
  mp::Cluster cluster(
      sim::MachineSpec::uniform(static_cast<std::size_t>(rd.from.nparts())));
  std::vector<InspectorResult> out(old.size());
  cluster.run([&](mp::Process& p) {
    out[static_cast<std::size_t>(p.rank())] =
        sched::rebuild_incremental(p, g_after, rd, old[static_cast<std::size_t>(p.rank())],
                                   sim::CpuCostModel::free());
  });
  return out;
}

void expect_results_identical(const std::vector<InspectorResult>& patched,
                              const std::vector<InspectorResult>& scratch) {
  ASSERT_EQ(patched.size(), scratch.size());
  for (std::size_t r = 0; r < patched.size(); ++r) {
    EXPECT_TRUE(patched[r].schedule == scratch[r].schedule) << "rank " << r;
    EXPECT_TRUE(patched[r].lgraph == scratch[r].lgraph) << "rank " << r;
  }
}

CsrDelta stencil_churn(const Csr& g, std::uint64_t seed) {
  // A refinement-front-shaped edit: a handful of skip-level inserts plus a
  // few removals of existing edges, scattered by the seed.
  Rng rng(seed);
  const auto n = g.num_vertices();
  const auto edges = g.edge_list();
  CsrDelta d;
  for (int i = 0; i < 12; ++i) {
    const auto v = static_cast<graph::Vertex>(rng.below(static_cast<std::uint64_t>(n - 3)));
    d.insert_edges.emplace_back(v, v + 2);
    d.weight_edits.push_back({v, 1.0 + static_cast<double>(i % 4)});
  }
  for (int i = 0; i < 8; ++i) {
    d.remove_edges.push_back(edges[rng.below(edges.size())]);
  }
  return d;
}

TEST(DeltaRebuild, GraphEditMatchesScratch) {
  const Csr g = graph::random_delaunay(700, 29);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(3000 + seed);
    const auto part = test::random_partition(g.num_vertices(), 2 + seed % 4, rng);
    CsrDelta cd = stencil_churn(g, 40 + seed);
    const Csr g2 = g.apply(cd);
    const auto rd = RemapDelta::graph_edit(part, cd);
    const auto old = build_all_schedules(g, part);
    expect_results_identical(rebuild_all(g2, rd, old), build_all_schedules(g2, part));
  }
}

TEST(DeltaRebuild, CombinedEditAndDriftMatchesScratch) {
  const Csr g = graph::random_delaunay(700, 31);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(4000 + seed);
    const std::size_t p = 3 + seed % 3;
    const auto from = test::random_partition(g.num_vertices(), p, rng);
    const auto to = test::random_partition(g.num_vertices(), p, rng);
    CsrDelta cd = stencil_churn(g, 60 + seed);
    const Csr g2 = g.apply(cd);
    const auto rd = RemapDelta::combined(from, to, cd);
    const auto old = build_all_schedules(g, from);
    expect_results_identical(rebuild_all(g2, rd, old), build_all_schedules(g2, to));
  }
}

TEST(DeltaRebuild, EmptyDeltaReproducesTheSchedule) {
  const Csr g = graph::random_delaunay(400, 37);
  Rng rng(5);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  CsrDelta cd;  // empty
  const Csr g2 = g.apply(cd);
  const auto rd = RemapDelta::graph_edit(part, cd);
  const auto old = build_all_schedules(g, part);
  expect_results_identical(rebuild_all(g2, rd, old), old);
}

TEST(DeltaRebuild, RedrawSizedDeltaStillMatchesScratch) {
  // delta == full rebuild: nothing survives (disjoint intervals) while the
  // graph also churns — the splice must degrade to a correct full scan.
  const Csr g = graph::random_delaunay(500, 41);
  const auto n = g.num_vertices();
  const auto from =
      IntervalPartition::from_sizes(std::vector<graph::Vertex>{n / 2, n - n / 2});
  const auto to = IntervalPartition::from_sizes_arranged(
      std::vector<graph::Vertex>{n - n / 2, n / 2}, partition::Arrangement{1, 0});
  CsrDelta cd = stencil_churn(g, 99);
  const Csr g2 = g.apply(cd);
  const auto rd = RemapDelta::combined(from, to, cd);
  const auto old = build_all_schedules(g, from);
  expect_results_identical(rebuild_all(g2, rd, old), build_all_schedules(g2, to));
}

TEST(DeltaRebuild, ComposedDeltaEqualsSequentialSplices) {
  const Csr g = graph::random_delaunay(600, 43);
  Rng rng(7);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  CsrDelta d1 = stencil_churn(g, 101);
  const Csr g1 = g.apply(d1);
  CsrDelta d2 = stencil_churn(g1, 102);
  const Csr g2 = g1.apply(d2);

  const auto old = build_all_schedules(g, part);
  // Two splices in sequence...
  const auto mid = rebuild_all(g1, RemapDelta::graph_edit(part, d1), old);
  const auto seq = rebuild_all(g2, RemapDelta::graph_edit(part, d2), mid);
  // ...must equal one splice of the composed delta, and the scratch build.
  const CsrDelta c = d1.then(d2);
  const auto composed = rebuild_all(g2, RemapDelta::graph_edit(part, c), old);
  expect_results_identical(seq, composed);
  expect_results_identical(composed, build_all_schedules(g2, part));
}

// --- patched-frame-plan oracles ----------------------------------------------

void expect_patch_matches_fresh(const Csr& g, const IntervalPartition& from,
                                const IntervalPartition& to, NodeMap node_map,
                                const sched::CoalesceOptions& opts) {
  const auto nprocs = static_cast<std::size_t>(from.nparts());
  const auto old_irs = build_all_schedules(g, from);
  const auto new_irs = build_all_schedules(g, to);
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(nprocs), std::move(node_map));
  std::vector<CoalescePlan> old_plans(nprocs), patched(nprocs), fresh(nprocs);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    old_plans[r] = sched::coalesce(p, old_irs[r].schedule, sim::CpuCostModel::free(),
                                   opts);
  });
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    patched[r] = sched::patch_coalesce(p, old_plans[r], old_irs[r].schedule,
                                       new_irs[r].schedule, sim::CpuCostModel::free(),
                                       opts);
  });
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    fresh[r] =
        sched::coalesce(p, new_irs[r].schedule, sim::CpuCostModel::free(), opts);
  });
  for (std::size_t r = 0; r < nprocs; ++r) {
    EXPECT_TRUE(patched[r] == fresh[r]) << "rank " << r;
  }
}

TEST(PatchCoalesce, DriftPatchMatchesFreshBothPolicies) {
  const Csr g = graph::random_delaunay(800, 47);
  for (const auto policy :
       {sched::CoalescePolicy::kAlwaysFrame, sched::CoalescePolicy::kAdaptive}) {
    sched::CoalesceOptions opts;
    opts.policy = policy;
    opts.bytes_per_elem = sizeof(double);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(6000 + seed);
      const auto from = test::random_partition(g.num_vertices(), 8, rng);
      const auto to = test::random_partition(g.num_vertices(), 8, rng);
      expect_patch_matches_fresh(g, from, to, NodeMap::contiguous(8, 4), opts);
      expect_patch_matches_fresh(g, from, to, NodeMap::contiguous(8, 2), opts);
    }
  }
}

TEST(PatchCoalesce, GraphEditPatchMatchesFresh) {
  const Csr g = graph::random_delaunay(700, 53);
  Rng rng(9);
  const auto part = test::random_partition(g.num_vertices(), 6, rng);
  CsrDelta cd = stencil_churn(g, 200);
  const Csr g2 = g.apply(cd);
  sched::CoalesceOptions opts;
  opts.policy = sched::CoalescePolicy::kAdaptive;
  opts.bytes_per_elem = sizeof(double);

  const auto old_irs = build_all_schedules(g, part);
  const auto new_irs = build_all_schedules(g2, part);
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(6), NodeMap::contiguous(6, 3));
  std::vector<CoalescePlan> old_plans(6), patched(6), fresh(6);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    old_plans[r] =
        sched::coalesce(p, old_irs[r].schedule, sim::CpuCostModel::free(), opts);
  });
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    patched[r] = sched::patch_coalesce(p, old_plans[r], old_irs[r].schedule,
                                       new_irs[r].schedule, sim::CpuCostModel::free(),
                                       opts);
    fresh[r] =
        sched::coalesce(p, new_irs[r].schedule, sim::CpuCostModel::free(), opts);
  });
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_TRUE(patched[r] == fresh[r]) << "rank " << r;
  }
}

TEST(PatchCoalesce, IdenticalSchedulePatchReproducesThePlan) {
  const Csr g = graph::random_delaunay(400, 59);
  Rng rng(11);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto irs = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4), NodeMap::contiguous(4, 2));
  std::vector<CoalescePlan> plans(4), patched(4);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    plans[r] = sched::coalesce(p, irs[r].schedule, sim::CpuCostModel::free());
  });
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    patched[r] = sched::patch_coalesce(p, plans[r], irs[r].schedule, irs[r].schedule,
                                       sim::CpuCostModel::free(), {});
  });
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(patched[r] == plans[r]) << "rank " << r;
  }
}

TEST(PatchCoalesce, DelegateRotationInvalidatesThePatch) {
  // A rotation bumps the NodeMap generation; the retained plan no longer
  // matches and the patch must refuse (full coalesce required) — the
  // invalidation rule the adaptive executor's fresh_verdicts branch encodes.
  const Csr g = graph::random_delaunay(400, 61);
  Rng rng(13);
  const auto part = test::random_partition(g.num_vertices(), 4, rng);
  const auto irs = build_all_schedules(g, part);
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4), NodeMap::contiguous(4, 2));
  std::vector<CoalescePlan> plans(4);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    plans[r] = sched::coalesce(p, irs[r].schedule, sim::CpuCostModel::free());
  });
  const std::vector<mp::Rank> rotated{1, 3};  // rotate both nodes' endpoints
  cluster.set_delegates(rotated);
  cluster.run([&](mp::Process& p) {
    const auto r = static_cast<std::size_t>(p.rank());
    EXPECT_THROW((void)sched::patch_coalesce(p, plans[r], irs[r].schedule,
                                             irs[r].schedule,
                                             sim::CpuCostModel::free(), {}),
                 std::invalid_argument);
  });
}

// --- the adaptive executor consumes a mesh delta in place --------------------

TEST(DeltaRebuild, AdaptiveExecutorAppliesMeshDeltaByteIdentically) {
  const Csr g = graph::port_coupled(4, 60, 8);
  CsrDelta cd = stencil_churn(g, 300);
  const Csr g2 = g.apply(cd);
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>(4, 1.0));
  constexpr int kBefore = 6;
  constexpr int kAfter = 7;

  // Sequential reference: iterate g, then the edited mesh, carrying values.
  std::vector<double> reference(static_cast<std::size_t>(g.num_vertices()));
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    reference[static_cast<std::size_t>(v)] = 1.0 + static_cast<double>(v % 11);
  }
  exec::IrregularLoop::reference_iterate(g, reference, kBefore);
  exec::IrregularLoop::reference_iterate(g2, reference, kAfter);

  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4), NodeMap::contiguous(4, 2));
  std::vector<std::vector<double>> finals(4);
  IntervalPartition final_part;
  cluster.run([&](mp::Process& p) {
    lb::AdaptiveOptions opts;
    opts.cpu = sim::CpuCostModel::sun4();
    opts.loop = exec::LoopCostModel::sun4();
    opts.enable_lb = false;
    opts.coalesce = true;
    opts.coalesce_opts.policy = sched::CoalescePolicy::kAdaptive;
    opts.coalesce_opts.bytes_per_elem = sizeof(double);
    lb::AdaptiveExecutor ax(p, g, part, opts);
    std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())));
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = 1.0 + static_cast<double>(
                       part.to_global(p.rank(), static_cast<graph::Vertex>(i)) % 11);
    }
    (void)ax.run(p, y, kBefore);
    ax.apply_mesh_delta(p, g2, cd, nullptr, y);
    EXPECT_EQ(ax.last_delta().dirty, cd.dirty_vertices());
    (void)ax.run(p, y, kAfter);
    finals[static_cast<std::size_t>(p.rank())] = std::move(y);
    if (p.is_root()) final_part = ax.partition();
  });
  for (int r = 0; r < 4; ++r) {
    const auto& fin = finals[static_cast<std::size_t>(r)];
    for (graph::Vertex i = 0; i < final_part.size(r); ++i) {
      EXPECT_EQ(fin[static_cast<std::size_t>(i)],
                reference[static_cast<std::size_t>(final_part.to_global(r, i))])
          << "rank " << r << " local " << i;
    }
  }
}

TEST(DeltaRebuild, AdaptiveExecutorRefusesAForeignDelta) {
  const Csr g = graph::port_coupled(4, 40, 6);
  const Csr other = graph::port_coupled(4, 40, 7);
  CsrDelta cd;
  cd.insert_edges = {{0, 5}};
  const Csr other2 = other.apply(cd);  // stamped against `other`, not `g`
  const auto part = IntervalPartition::from_weights(g.num_vertices(),
                                                    std::vector<double>(4, 1.0));
  mp::Cluster cluster(sim::MachineSpec::uniform_ethernet(4), NodeMap::contiguous(4, 2));
  cluster.run([&](mp::Process& p) {
    lb::AdaptiveOptions opts;
    opts.enable_lb = false;
    lb::AdaptiveExecutor ax(p, g, part, opts);
    std::vector<double> y(static_cast<std::size_t>(ax.partition().size(p.rank())), 1.0);
    EXPECT_THROW(ax.apply_mesh_delta(p, other2, cd, nullptr, y),
                 std::invalid_argument);
  });
}

// --- plan-cache re-key (stance::Service::patch_plan) -------------------------

std::shared_ptr<const graph::Csr> service_mesh(std::uint64_t seed = 67) {
  return std::make_shared<graph::Csr>(graph::random_delaunay(900, seed));
}

JobSpec identity_job(std::shared_ptr<const graph::Csr> mesh, int iterations = 3) {
  JobSpec spec;
  spec.tenant = "amr";
  spec.mesh = std::move(mesh);
  spec.config.ordering = order::Method::kIdentity;  // patchable numbering
  spec.config.build = sched::BuildMethod::kSort2;
  spec.iterations = iterations;
  return spec;
}

ServiceOptions coalesced_service_opts() {
  ServiceOptions opts;
  opts.coalesce = true;
  opts.coalesce_opts.policy = sched::CoalescePolicy::kAdaptive;
  opts.coalesce_opts.bytes_per_elem = sizeof(double);
  return opts;
}

TEST(ServicePlanPatch, PatchThenHitIsByteIdenticalToAColdBuild) {
  const auto mesh = service_mesh();
  CsrDelta cd = stencil_churn(*mesh, 400);
  const auto mesh2 = std::make_shared<const graph::Csr>(mesh->apply(cd));

  Service svc(sim::MachineSpec::sun4_ethernet(4), coalesced_service_opts(),
              NodeMap::contiguous(4, 2));
  ASSERT_TRUE(svc.submit(identity_job(mesh)).accepted);
  const auto cold = svc.drain();
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_FALSE(cold[0].plan_cache_hit);

  // Patch the cached plan onto the edited mesh (re-key, splice, re-price).
  ASSERT_TRUE(svc.patch_plan(identity_job(mesh), cd, mesh2));
  const auto stats = svc.stats();
  EXPECT_EQ(stats.plan_cache.patches, 1u);
  EXPECT_EQ(stats.plan_cache.size, 1u);  // re-key, not a second entry

  // The patched entry is resident under the new mesh's key and warm-serves.
  const auto patched = svc.cached_plan_for(identity_job(mesh2));
  ASSERT_NE(patched, nullptr);
  EXPECT_GT(patched->cold_build_seconds, 0.0);  // splice was charged
  ASSERT_TRUE(svc.submit(identity_job(mesh2)).accepted);
  const auto warm = svc.drain();
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_TRUE(warm[0].plan_cache_hit);
  EXPECT_EQ(warm[0].build_seconds, 0.0);

  // Byte-identity oracle: a second service cold-builds the edited mesh; the
  // patched artifacts must match member for member.
  Service oracle(sim::MachineSpec::sun4_ethernet(4), coalesced_service_opts(),
                 NodeMap::contiguous(4, 2));
  ASSERT_TRUE(oracle.submit(identity_job(mesh2)).accepted);
  (void)oracle.drain();
  const auto fresh = oracle.cached_plan_for(identity_job(mesh2));
  ASSERT_NE(fresh, nullptr);
  ASSERT_EQ(patched->per_rank.size(), fresh->per_rank.size());
  ASSERT_EQ(patched->coalesce.size(), fresh->coalesce.size());
  for (std::size_t r = 0; r < patched->per_rank.size(); ++r) {
    EXPECT_TRUE(patched->per_rank[r].schedule == fresh->per_rank[r].schedule)
        << "rank " << r;
    EXPECT_TRUE(patched->per_rank[r].lgraph == fresh->per_rank[r].lgraph)
        << "rank " << r;
    EXPECT_TRUE(patched->coalesce[r] == fresh->coalesce[r]) << "rank " << r;
  }
  // The warm job's answer equals the cold oracle's answer bit for bit.
  const auto oracle_runs = [&] {
    Service again(sim::MachineSpec::sun4_ethernet(4), coalesced_service_opts(),
                  NodeMap::contiguous(4, 2));
    (void)again.submit(identity_job(mesh2));
    return again.drain();
  }();
  EXPECT_EQ(warm[0].checksum, oracle_runs[0].checksum);
}

TEST(ServicePlanPatch, PatchWithoutAResidentPlanReturnsFalse) {
  const auto mesh = service_mesh();
  CsrDelta cd = stencil_churn(*mesh, 500);
  const auto mesh2 = std::make_shared<const graph::Csr>(mesh->apply(cd));
  Service svc(sim::MachineSpec::sun4_ethernet(4), coalesced_service_opts(),
              NodeMap::contiguous(4, 2));
  EXPECT_FALSE(svc.patch_plan(identity_job(mesh), cd, mesh2));  // never built
  EXPECT_EQ(svc.stats().plan_cache.patches, 0u);
  EXPECT_EQ(svc.stats().plan_cache.size, 0u);
}

TEST(ServicePlanPatch, PatchRequiresIdentityOrderingAndAChainedDelta) {
  const auto mesh = service_mesh();
  CsrDelta cd = stencil_churn(*mesh, 600);
  const auto mesh2 = std::make_shared<const graph::Csr>(mesh->apply(cd));
  Service svc(sim::MachineSpec::sun4_ethernet(4), coalesced_service_opts(),
              NodeMap::contiguous(4, 2));

  JobSpec hilbert = identity_job(mesh);
  hilbert.config.ordering = order::Method::kHilbert;
  EXPECT_THROW((void)svc.patch_plan(hilbert, cd, mesh2), std::invalid_argument);

  // A delta stamped against a different mesh must refuse too.
  const auto foreign = service_mesh(68);
  CsrDelta foreign_cd = stencil_churn(*foreign, 700);
  const auto foreign2 = std::make_shared<const graph::Csr>(foreign->apply(foreign_cd));
  EXPECT_THROW((void)svc.patch_plan(identity_job(mesh), foreign_cd, foreign2),
               std::invalid_argument);
}

TEST(PlanCacheUnit, PatchReKeysInPlace) {
  PlanCache cache(2);
  PlanKey a;
  a.mesh_fingerprint = 1;
  PlanKey b = a;
  b.mesh_fingerprint = 2;
  auto plan = std::make_shared<CachedPlan>();
  EXPECT_FALSE(cache.patch(a, b, plan));  // nothing resident yet
  cache.insert(a, plan);
  EXPECT_TRUE(cache.patch(a, b, plan));
  EXPECT_EQ(cache.peek(a), nullptr);
  EXPECT_EQ(cache.peek(b), plan);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.patches, 1u);
  EXPECT_EQ(stats.insertions, 1u);  // the re-key is not new demand
  EXPECT_EQ(stats.size, 1u);
}

}  // namespace
}  // namespace stance
